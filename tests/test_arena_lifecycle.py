"""Arena slot lifecycle and the streaming fleet scheduler.

The streaming tier (DESIGN.md §2.11) turns the arena's fixed segments
into reclaimable slots: :meth:`ChainArena.retire` returns a slot to a
coalescing free list, :meth:`ChainArena.admit` best-fit packs an
incoming chain into a hole, and :meth:`ChainArena.compact` re-bases
the live slots when fragmentation blocks a fit.  These tests drive
random retire → reclaim → admit → compact cycles and assert the
arena's structural invariants — fleet-unique robot keys, coherent
owner/id/index tables, coherent topology arrays — plus the scheduler
property that matters most: chains admitted mid-run through
``FleetKernel.run_stream`` produce **bit-identical** per-chain
``RoundReport`` streams to ``Simulator(engine="kernel")``.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.arena import ChainArena, ScratchPool
from repro.core.batch import BatchSimulator, gather_batch, gather_stream
from repro.core.chain import ClosedChain
from repro.core.engine_fleet import FleetKernel
from repro.core.runs import RunRegistry
from repro.core.simulator import Simulator
from repro.chains import crenellation, random_chain, square_ring

from tests.conftest import closed_chain_positions


# ---------------------------------------------------------------------------
# coherence assertions
# ---------------------------------------------------------------------------

def assert_arena_coherent(arena: ChainArena) -> None:
    """Structural invariants of the slot lifecycle.

    Live slots are disjoint and exactly ``n0`` cells; the owner table
    maps every live cell to its chain; ids are unique per chain with an
    exact id → index table, so ``base + robot_id`` keys are
    fleet-unique; chain views alias the arena buffers; free holes are
    sorted, disjoint from the slots, coalesced, and account for every
    unoccupied cell.
    """
    live = arena.live_indices()
    claimed = np.zeros(arena.span, dtype=bool)
    keys = set()
    for ci in live.tolist():
        b = int(arena.base[ci])
        n0 = int(arena.n0[ci])
        n = int(arena.length[ci])
        assert 0 < n <= n0
        assert not claimed[b:b + n0].any(), "overlapping slots"
        claimed[b:b + n0] = True
        assert (arena.owner[b:b + n0] == ci).all()
        chain = arena.chains[ci]
        assert chain.n == n
        assert np.shares_memory(chain._arr, arena.pos)
        ids = arena.ids[b:b + n].tolist()
        assert len(set(ids)) == n, "duplicate robot ids in slot"
        assert all(0 <= rid < n0 for rid in ids)
        for k, rid in enumerate(ids):
            assert arena.index[b + rid] == k
            key = b + rid
            assert key not in keys, "fleet robot key collision"
            keys.add(key)
        # removed ids resolve to -1
        for rid in set(range(n0)) - set(ids):
            assert arena.index[b + rid] == -1
    # retired rows all sit on the recycling list, exactly once
    assert sorted(arena.free_ids) == [ci for ci in range(len(arena.chains))
                                      if not arena.live[ci]]
    # free holes: sorted, coalesced, disjoint from slots, complete
    prev_end = None
    free_cells = 0
    for off, size in arena.free:
        assert size > 0
        assert not claimed[off:off + size].any(), "hole overlaps a slot"
        claimed[off:off + size] = True
        if prev_end is not None:
            assert off > prev_end, "free list not coalesced/sorted"
        prev_end = off + size
        free_cells += size
    assert free_cells == arena.free_cells
    assert arena.live_cells == int(arena.n0[live].sum())
    # topology arrays: one entry per live robot, cyclic and chain-closed
    cells, cell_chain, prev_pos, next_pos = arena.topology()
    assert len(cells) == int(arena.length[live].sum())
    idx = np.arange(len(cells))
    assert (next_pos[prev_pos] == idx).all()
    assert (prev_pos[next_pos] == idx).all()
    assert (cell_chain[prev_pos] == cell_chain).all()
    assert (arena.owner[cells] == cell_chain).all()


def _report_key(report):
    return (report.round_index, report.n_before, report.n_after, report.hops,
            report.merge_patterns, report.merges, report.runs_started,
            report.runs_terminated, report.active_runs,
            report.merge_conflicts, report.runner_hop_conflicts)


def _result_key(res):
    return (res.gathered, res.stalled, res.rounds, res.initial_n,
            res.final_n, res.final_positions,
            [_report_key(r) for r in res.reports])


def assert_stream_equals_singles(fleet_pts, slots, max_rounds=None,
                                 check_invariants=True, workers=None):
    """Stream the chains through a bounded arena; compare each result
    against its own ``Simulator(engine="kernel")`` run."""
    singles = [Simulator(list(p), engine="kernel",
                         check_invariants=check_invariants).run(
                             max_rounds=max_rounds)
               for p in fleet_pts]
    sim = BatchSimulator([], engine="kernel", backend="fleet",
                         check_invariants=check_invariants,
                         keep_reports=True, workers=workers)
    got = dict(sim.run_stream([list(p) for p in fleet_pts], slots=slots,
                              max_rounds=max_rounds))
    assert sorted(got) == list(range(len(fleet_pts)))
    for i, s in enumerate(singles):
        assert _result_key(got[i]) == _result_key(s), f"chain {i}"
    return sim


# ---------------------------------------------------------------------------
# scratch pool
# ---------------------------------------------------------------------------

class TestScratchPool:
    def test_reuse_and_fill(self):
        pool = ScratchPool()
        a = pool.take("mask", 64, bool, fill=False)
        a[:] = True
        b = pool.take("mask", 64, bool, fill=False)
        assert b is not None and not b.any()        # refilled
        assert np.shares_memory(a, b)               # same storage
        c = pool.take("mask", 32, bool, fill=False)
        assert len(c) == 32 and np.shares_memory(b, c)

    def test_distinct_tags_distinct_buffers(self):
        pool = ScratchPool()
        a = pool.take("a", 16, np.int64, fill=0)
        b = pool.take("b", 16, np.int64, fill=7)
        assert not np.shares_memory(a, b)
        assert (b == 7).all() and (a == 0).all()

    def test_growth(self):
        pool = ScratchPool()
        a = pool.take("m", 8, np.int64, fill=1)
        b = pool.take("m", 1024, np.int64, fill=2)
        assert len(b) == 1024 and (b == 2).all()
        assert not np.shares_memory(a, b)


# ---------------------------------------------------------------------------
# slot lifecycle (direct arena driving)
# ---------------------------------------------------------------------------

class TestSlotLifecycle:
    def test_retire_reclaims_and_admit_reuses(self):
        chains = [ClosedChain(square_ring(8)) for _ in range(4)]
        arena = ChainArena(chains)
        n = chains[0].n
        base1 = int(arena.base[1])
        assert arena.free_cells == 0
        arena.retire(1)
        assert arena.free_cells == n
        ci = arena.admit(ClosedChain(square_ring(8)))
        assert ci == 1                      # row recycled, tables bounded
        assert int(arena.base[ci]) == base1  # slot reused
        assert arena.free_cells == 0
        assert len(arena.chains) == 4
        assert_arena_coherent(arena)

    def test_best_fit_prefers_smallest_hole(self):
        chains = [ClosedChain(square_ring(20)),   # big slot
                  ClosedChain(square_ring(6)),    # keeper between holes
                  ClosedChain(square_ring(8)),    # small slot
                  ClosedChain(square_ring(6))]
        arena = ChainArena(chains)
        arena.retire(0)
        arena.retire(2)                     # two non-adjacent holes
        assert len(arena.free) == 2
        small = ClosedChain(square_ring(8))
        ci = arena.admit(small)
        assert int(arena.base[ci]) == int(arena.base[2]),  \
            "best fit must pick the smaller hole"
        assert_arena_coherent(arena)

    def test_free_list_coalesces(self):
        chains = [ClosedChain(square_ring(8)) for _ in range(3)]
        arena = ChainArena(chains)
        arena.retire(0)
        arena.retire(2)
        assert len(arena.free) == 2
        arena.retire(1)                     # bridges both neighbours
        assert len(arena.free) == 1
        assert arena.free[0] == (0, arena.span)

    def test_admit_returns_minus_one_when_fragmented(self):
        chains = [ClosedChain(square_ring(8)) for _ in range(4)]
        arena = ChainArena(chains)
        arena.retire(0)
        arena.retire(2)                     # two disjoint small holes
        big = ClosedChain(square_ring(14))
        assert big.n > chains[0].n
        assert arena.admit(big) == -1
        if arena.free_cells >= big.n:
            arena.compact()
            assert arena.admit(big) >= 0
        assert_arena_coherent(arena)

    def test_compact_rebases_and_repoints(self):
        chains = [ClosedChain(square_ring(8)) for _ in range(5)]
        arena = ChainArena(chains)
        positions = {ci: arena.chains[ci].positions for ci in (1, 3, 4)}
        arena.retire(0)
        arena.retire(2)
        reclaimed = arena.compact()
        assert reclaimed >= 0
        assert len(arena.free) == 1
        # slots packed into the prefix, content preserved, views live
        assert int(arena.base[1]) == 0
        for ci, pos in positions.items():
            assert arena.chains[ci].positions == pos
        assert_arena_coherent(arena)

    def test_grow_preserves_content(self):
        chains = [ClosedChain(square_ring(8)) for _ in range(2)]
        arena = ChainArena(chains)
        before = [c.positions for c in chains]
        old_span = arena.span
        arena.grow(old_span * 3)
        assert arena.span == old_span * 3
        assert [c.positions for c in arena.chains] == before
        assert_arena_coherent(arena)
        # the new tail is a single admissible hole
        ci = arena.admit(ClosedChain(square_ring(8)))
        assert ci == 2
        assert_arena_coherent(arena)

    def test_kernel_admit_grows_past_fragmented_free_space(self):
        # free space smaller than the incoming chain *and* fragmented:
        # the kernel's grow target must leave a tail hole that fits the
        # chain on its own
        kernel = FleetKernel([square_ring(6), square_ring(6),
                              square_ring(6)], validate_initial=False)
        kernel.arena.retire(0)
        kernel.arena.retire(2)              # two disjoint 20-cell holes
        big = ClosedChain(square_ring(20))  # n = 76 > free total
        assert kernel.arena.free_cells < big.n
        ci = kernel.admit(big)
        assert ci >= 0
        assert kernel.stream_stats["grows"] == 1
        assert_arena_coherent(kernel.arena)

    def test_capacity_preprovisions_free_space(self):
        chains = [ClosedChain(square_ring(8))]
        arena = ChainArena(chains, capacity=chains[0].n * 4)
        assert arena.free_cells == chains[0].n * 3
        assert_arena_coherent(arena)

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_random_lifecycle_cycles(self, data):
        """Random retire → reclaim → admit → compact cycles stay coherent."""
        rng_seed = data.draw(st.integers(0, 2 ** 16))
        rng = random.Random(rng_seed)
        sizes = [6, 8, 10, 14]
        arena = ChainArena([ClosedChain(square_ring(rng.choice(sizes)))
                            for _ in range(data.draw(st.integers(1, 5)))])
        live = set(range(len(arena.chains)))
        ops = data.draw(st.lists(
            st.sampled_from(["retire", "admit", "compact", "grow"]),
            min_size=1, max_size=25))
        for op in ops:
            if op == "retire" and live:
                ci = rng.choice(sorted(live))
                live.discard(ci)
                arena.retire(ci)
            elif op == "admit":
                chain = ClosedChain(square_ring(rng.choice(sizes)))
                ci = arena.admit(chain)
                if ci < 0 and arena.free_cells >= chain.n:
                    arena.compact()
                    ci = arena.admit(chain)
                if ci < 0:
                    arena.grow(arena.span + chain.n)
                    ci = arena.admit(chain)
                assert ci >= 0
                live.add(ci)
            elif op == "compact":
                arena.compact()
            elif op == "grow":
                arena.grow(arena.span + rng.choice(sizes))
            assert_arena_coherent(arena)
        assert sorted(live) == arena.live_indices().tolist()


# ---------------------------------------------------------------------------
# registry row compaction
# ---------------------------------------------------------------------------

class TestRegistryCompaction:
    def test_compact_rows_preserves_relative_age(self):
        reg = RunRegistry()
        reg.keep_stopped = False
        for k in range(8):
            reg.start(robot_id=k, direction=1 if k % 2 else -1,
                      axis=(1, 0), round_index=0)
        reg.stop_slot(0, 1, 1)
        reg.stop_slot(3, 1, 1)
        reg.stop_slot(4, 1, 1)
        survivors = [int(reg.robot[rid]) for rid in reg._active]
        dirs = [int(reg.dirn[rid]) for rid in reg._active]
        reg.compact_rows()
        assert reg._active == [0, 1, 2, 3, 4]
        assert reg._count == 5
        assert [int(reg.robot[rid]) for rid in reg._active] == survivors
        assert [int(reg.dirn[rid]) for rid in reg._active] == dirs

    def test_compact_rows_shrinks_matrix(self):
        reg = RunRegistry()
        reg.keep_stopped = False
        for k in range(300):
            reg.start_fleet_bulk(np.array([[0, k, 1, 1, 1, 0]]), 0)
        slots = reg.active_slots()
        reg.stop_slots(slots[:-2], np.ones(len(slots) - 2, np.int64), 1)
        assert len(reg._data) >= 300
        reg.compact_rows()
        assert reg._count == 2
        assert len(reg._data) < 300

    def test_compact_rows_refuses_with_stopped_views(self):
        reg = RunRegistry()                 # keep_stopped defaults True
        reg.start(0, 1, (1, 0), 0)
        with pytest.raises(ValueError):
            reg.compact_rows()


# ---------------------------------------------------------------------------
# streaming scheduler: bit-identical admissions
# ---------------------------------------------------------------------------

class TestStreamingEquivalence:
    def test_mixed_stream_small_slots(self):
        # members retire in very different rounds, so admissions land
        # at staggered birth phases relative to the start interval
        pts = [square_ring(8), square_ring(16), crenellation(5, 1, 4),
               square_ring(24), crenellation(3, 1, 8), square_ring(10),
               square_ring(12), crenellation(8, 1, 3)]
        sim = assert_stream_equals_singles(pts, slots=3)
        stats = sim.last_stream_stats
        assert stats["peak_live_chains"] <= 3
        assert stats["admitted"] == len(pts)

    def test_stream_matches_gather_batch(self):
        rng = random.Random(11)
        pts = [random_chain(40 + 10 * k, rng) for k in range(6)]
        batch = gather_batch([list(p) for p in pts], keep_reports=True)
        got = dict(gather_stream([list(p) for p in pts], slots=2,
                                 keep_reports=True))
        for i, b in enumerate(batch):
            assert _result_key(got[i]) == _result_key(b)

    def test_budget_stalls_stream(self):
        pts = [square_ring(20), square_ring(8), square_ring(16)]
        assert_stream_equals_singles(pts, slots=2, max_rounds=5)

    def test_slots_one_serialises(self):
        pts = [square_ring(8), crenellation(4, 1, 4), square_ring(12)]
        sim = assert_stream_equals_singles(pts, slots=1)
        assert sim.last_stream_stats["peak_live_chains"] == 1

    def test_uniform_stream_spans_slot_budget(self):
        # uniform chains: one provisioning grow to slots × n cells,
        # perfect slot recycling afterwards — the bounded-memory claim
        n_chains, slots = 40, 8
        sim = BatchSimulator([], engine="kernel", backend="fleet",
                             keep_reports=False)
        results = list(sim.run_stream(
            (square_ring(10) for _ in range(n_chains)), slots=slots))
        assert len(results) == n_chains
        stats = sim.last_stream_stats
        n = len(square_ring(10))
        assert stats["peak_live_chains"] <= slots
        assert stats["peak_cells"] <= slots * n
        assert stats["arena_span"] <= slots * n
        assert stats["grows"] <= 1

    def test_long_stream_bounds_registry(self):
        kernel = FleetKernel([], keep_reports=False, validate_initial=False)
        total = 0
        for _ci, res in kernel.run_stream(
                (square_ring(12) for _ in range(300)), slots=8,
                release=True):
            total += 1
            assert res.gathered
        assert total == 300
        # row recycling kept the registry matrix *and* the per-chain
        # tables bounded by the live fleet, not by chains ever admitted
        assert len(kernel.registry._data) < 4096
        assert len(kernel.arena.chains) <= 8
        assert len(kernel.reports) <= 8
        assert kernel.stream_stats["admitted"] == 300

    def test_workers_round_robin_identical(self):
        pts = [square_ring(8 + 2 * (k % 6)) for k in range(12)] \
            + [crenellation(4, 1, 4)] * 3
        sim = assert_stream_equals_singles(pts, slots=4, workers=2)
        assert sim.last_stream_stats["workers"] == 2

    def test_constructor_chains_run_ahead_of_stream(self):
        head = [square_ring(8), square_ring(12)]
        tail = [square_ring(16), crenellation(3, 1, 5)]
        singles = [Simulator(list(p), engine="kernel").run()
                   for p in head + tail]
        sim = BatchSimulator([list(p) for p in head], engine="kernel",
                             backend="fleet", keep_reports=True)
        got = dict(sim.run_stream([list(p) for p in tail], slots=2))
        for i, s in enumerate(singles):
            assert _result_key(got[i]) == _result_key(s)

    def test_max_rounds_cap_does_not_leak_across_runs(self):
        # a capped stream must not poison later admissions or a later
        # uncapped run with its cap (budgets stay the params' bounds)
        kernel = FleetKernel([], validate_initial=False)
        capped = list(kernel.run_stream([list(square_ring(20))], slots=1,
                                        max_rounds=2))
        assert capped[0][1].stalled and capped[0][1].rounds == 2
        uncapped = dict(kernel.run_stream([list(square_ring(20))], slots=1))
        single = Simulator(list(square_ring(20)), engine="kernel").run()
        assert uncapped[1].gathered
        assert uncapped[1].rounds == single.rounds

    def test_empty_stream(self):
        sim = BatchSimulator([], engine="kernel", backend="fleet")
        assert list(sim.run_stream((), slots=4)) == []

    def test_stream_requires_fleet_backend(self):
        sim = BatchSimulator([], engine="vectorized", backend="process")
        with pytest.raises(ValueError):
            list(sim.run_stream([square_ring(8)], slots=2))

    def test_invalid_slots(self):
        kernel = FleetKernel([])
        with pytest.raises(ValueError):
            list(kernel.run_stream([square_ring(8)], slots=0))
        sim = BatchSimulator([], engine="kernel", backend="fleet",
                             workers=2)
        with pytest.raises(ValueError):       # pool path validates too
            list(sim.run_stream([square_ring(8)], slots=0))

    def test_pool_honours_total_slot_budget(self):
        # slots < workers must not multiply residency to one per
        # worker: the pool shrinks to `slots` workers instead
        pts = [square_ring(8 + 2 * (k % 4)) for k in range(8)]
        singles = [Simulator(list(p), engine="kernel").run() for p in pts]
        sim = BatchSimulator([], engine="kernel", backend="fleet",
                             workers=4)
        got = dict(sim.run_stream([list(p) for p in pts], slots=2))
        assert sim.last_stream_stats["workers"] == 2
        for i, s in enumerate(singles):
            assert _result_key(got[i]) == _result_key(s)

    def test_progress_reports_unknown_total(self):
        calls = []
        sim = BatchSimulator([], engine="kernel", backend="fleet",
                             keep_reports=False)
        list(sim.run_stream([square_ring(8) for _ in range(5)], slots=2,
                            progress=lambda d, t: calls.append((d, t))))
        assert calls and calls[-1] == (5, 5)   # total == chains submitted,
        assert all(t in (-1, 5) for _, t in calls)  # not peak rows
        assert all(d1 <= d2 for (d1, _), (d2, _)
                   in zip(calls, calls[1:]))

    @settings(max_examples=8, deadline=None)
    @given(st.lists(closed_chain_positions(max_cells=20),
                    min_size=2, max_size=6),
           st.integers(min_value=1, max_value=3))
    def test_property_streams(self, fleet_pts, slots):
        assert_stream_equals_singles(fleet_pts, slots=slots,
                                     check_invariants=True)


# ---------------------------------------------------------------------------
# incremental topology (DESIGN.md §2.14)
# ---------------------------------------------------------------------------

class TestIncrementalTopology:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_ops_match_reference(self, data):
        """Random retire/admit/move/contract/compact/grow sequences:
        the delta-maintained arrays equal a from-scratch rebuild after
        every single operation."""
        rng = random.Random(data.draw(st.integers(0, 2 ** 16)))
        sizes = [6, 8, 10, 14]
        arena = ChainArena([ClosedChain(square_ring(rng.choice(sizes)))
                            for _ in range(data.draw(st.integers(2, 5)))])
        arena.topology()               # materialise the maintained state
        live = set(range(len(arena.chains)))
        ops = data.draw(st.lists(
            st.sampled_from(["retire", "admit", "move", "contract",
                             "compact", "grow", "read"]),
            min_size=1, max_size=30))
        for op in ops:
            if op == "retire" and live:
                ci = rng.choice(sorted(live))
                live.discard(ci)
                arena.retire(ci)
            elif op == "admit":
                chain = ClosedChain(square_ring(rng.choice(sizes)))
                ci = arena.admit(chain)
                if ci < 0:
                    arena.grow(arena.span + chain.n)
                    ci = arena.admit(chain)
                live.add(ci)
            elif op == "move" and live:
                # robots moving never touches the topology arrays
                ci = rng.choice(sorted(live))
                b, n = int(arena.base[ci]), int(arena.length[ci])
                arena.pos[b:b + n] += rng.choice([-1, 1])
            elif op == "contract" and live:
                # shrink like the contraction stage: lengths drop
                # first, then one topo_contract covers every row
                cis = [ci for ci in sorted(live)
                       if int(arena.length[ci]) >= 6
                       and rng.random() < 0.5]
                if not cis:
                    continue
                for ci in cis:
                    arena.length[ci] -= 2
                arena.topo_contract(np.array(cis, dtype=np.int64))
            elif op == "compact":
                arena.compact()
            elif op == "grow":
                arena.grow(arena.span + rng.choice(sizes))
            elif op == "read":
                arena.topology()       # resolve pending damage mid-run
            arena.verify_topology()

    def test_retire_admit_patches_without_rebuild(self):
        arena = ChainArena([ClosedChain(square_ring(8))
                            for _ in range(4)])
        arena.topology()
        builds0 = arena.topo_stats["rebuilds"]
        arena.retire(1)
        arena.verify_topology()
        ci = arena.admit(ClosedChain(square_ring(8)))
        assert ci == 1
        arena.verify_topology()
        assert arena.topo_stats["rebuilds"] == builds0, \
            "retire/admit churn must patch, not rebuild"
        assert arena.topo_stats["delta_ops"] > 0

    def test_batch_admission_stamps_conservative_keys(self):
        # topo_admit_batch stamps every burst row with the burst's
        # lowest insertion position; the next topology() call must
        # resolve them all to exact block starts
        arena = ChainArena([ClosedChain(square_ring(8))
                            for _ in range(5)])
        arena.topology()
        arena.retire_batch(np.array([1, 3]))
        arena.verify_topology()
        got = arena.reserve_batch([28, 28])
        assert got == [1, 3]
        chains = [ClosedChain(square_ring(8)) for _ in got]
        arena.topo_admit_batch(got)
        arena.attach_batch(got,
                           [c.positions_array() for c in chains],
                           [c.edge_codes() for c in chains],
                           [0, 0])
        arena.verify_topology()
        assert_arena_coherent(arena)

    def test_churn_stream_bounds_rebuilds(self):
        """Full rebuilds scale with compactions + grows, not rounds —
        the bounded-rebuild claim of the delta algebra."""
        sim = BatchSimulator([], engine="kernel", backend="fleet",
                             keep_reports=False)
        rings = [square_ring(3), square_ring(4)]
        done = sum(1 for _ in sim.run_stream(
            (list(rings[i % 2]) for i in range(400)), slots=16))
        assert done == 400
        stats = sim.last_stream_stats
        assert stats["rounds"] > 20
        assert stats["topo_delta_ops"] > 0
        assert stats["topo_delta_cells"] > 0
        assert stats["topo_rebuilds"] <= \
            stats["compactions"] + stats["grows"] + 2
        assert stats["topo_rebuilds"] < stats["rounds"] // 4
        assert stats["rounds_per_s"] > 0

    def test_streaming_with_invariant_checks_verifies_topology(self):
        # check_invariants=True runs verify_topology every round; a
        # churny mixed stream must survive the cross-check end to end
        pts = [square_ring(8), square_ring(12), square_ring(8),
               crenellation(3, 1, 4), square_ring(10), square_ring(8)]
        assert_stream_equals_singles(pts, slots=2, check_invariants=True)


# ---------------------------------------------------------------------------
# batched intake (reserve_batch / attach_batch bursts)
# ---------------------------------------------------------------------------

class TestBatchIntake:
    def test_burst_with_bad_entries_quarantines_in_stream_order(self):
        broken = [(0, 0), (5, 5), (1, 0), (1, 1)]      # non-unit edge
        stream = [list(square_ring(8)), list(broken),
                  list(square_ring(10)), [], list(square_ring(12))]
        kernel = FleetKernel([], keep_reports=False)
        outs = list(kernel.run_stream(iter(stream), slots=8,
                                      on_error="quarantine"))
        by_idx = dict(outs)
        assert sorted(by_idx) == [0, 1, 2, 3, 4]
        assert not by_idx[1].ok and by_idx[1].quarantined
        assert not by_idx[3].ok and by_idx[3].quarantined
        # quarantine outcomes surface before any gathered result
        order = [idx for idx, _ in outs]
        assert order.index(1) < min(order.index(i) for i in (0, 2, 4))
        for i in (0, 2, 4):
            single = Simulator(stream[i], engine="kernel").run()
            got = by_idx[i]
            res = got.result if hasattr(got, "result") else got
            assert res.rounds == single.rounds
            assert res.final_positions == single.final_positions

    def test_burst_error_messages_match_per_chain_constructor(self):
        broken = [(0, 0), (5, 5), (1, 0), (1, 1)]
        kernel = FleetKernel([], keep_reports=False)
        outs = dict(kernel.run_stream(iter([list(broken)]), slots=4,
                                      on_error="quarantine"))
        try:
            ClosedChain(list(broken))
            raise AssertionError("constructor should reject this chain")
        except Exception as exc:           # noqa: BLE001 - mirror check
            assert outs[0].message == str(exc)
            assert outs[0].error == type(exc).__name__

    def test_burst_mixed_payload_types(self):
        # ndarray, ClosedChain and list payloads in one burst all land
        # identically to their per-chain admissions
        pts = [square_ring(8), square_ring(10), square_ring(12)]
        payloads = [np.array(pts[0]), ClosedChain(pts[1]), list(pts[2])]
        singles = [Simulator(list(p), engine="kernel").run() for p in pts]
        sim = BatchSimulator([], engine="kernel", backend="fleet",
                             keep_reports=True)
        got = dict(sim.run_stream(iter(payloads), slots=3))
        for i, s in enumerate(singles):
            assert _result_key(got[i]) == _result_key(s)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(closed_chain_positions(max_cells=18),
                    min_size=3, max_size=8),
           st.integers(min_value=2, max_value=4))
    def test_property_burst_admissions(self, fleet_pts, slots):
        # property drive of the batched intake: whatever the burst
        # geometry (hole reuse, grows, splits), results stay
        # bit-identical to single-chain runs
        assert_stream_equals_singles(fleet_pts, slots=slots,
                                     check_invariants=False)
