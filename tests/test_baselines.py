"""Baseline strategies: global vision, compass, Manhattan Hopper."""

import random

import pytest

from repro.errors import ChainError
from repro.grid.lattice import bounding_box, manhattan
from repro.baselines import (
    CompassGatherer,
    GlobalVisionGatherer,
    ManhattanHopper,
    OpenChain,
    gather_compass,
    gather_global_vision,
    shorten_open_chain,
)
from repro.core.chain import ClosedChain
from repro.chains import random_chain, rectangle_ring, square_ring


class TestGlobalVision:
    @pytest.mark.parametrize("pts", [
        pytest.param(square_ring(8), id="square-8"),
        pytest.param(square_ring(20), id="square-20"),
        pytest.param(rectangle_ring(24, 6), id="rect"),
    ])
    def test_gathers(self, pts):
        res = gather_global_vision(list(pts))
        assert res.gathered

    def test_rounds_track_diameter(self):
        small = gather_global_vision(square_ring(10))
        large = gather_global_vision(square_ring(40))
        d_small = bounding_box(square_ring(10)).diameter
        d_large = bounding_box(square_ring(40)).diameter
        assert small.rounds <= d_small + 4
        assert large.rounds <= d_large + 4

    def test_connectivity_never_breaks(self):
        g = GlobalVisionGatherer(ClosedChain(square_ring(12)))
        while not g.chain.is_gathered() and g.round_index < 200:
            g.step()
            g.chain.validate()
        assert g.chain.is_gathered()

    def test_random_chains(self):
        rng = random.Random(2)
        for _ in range(5):
            res = gather_global_vision(random_chain(48, rng))
            assert res.gathered


class TestCompass:
    def test_gathers(self):
        res = gather_compass(square_ring(16))
        assert res.gathered

    def test_connectivity_never_breaks(self):
        g = CompassGatherer(ClosedChain(square_ring(12)))
        while not g.chain.is_gathered() and g.round_index < 400:
            g.step()
            g.chain.validate()
        assert g.chain.is_gathered()

    def test_final_position_is_south_east(self):
        pts = square_ring(10)
        res = gather_compass(list(pts))
        box = bounding_box(pts)
        final = res.final_positions[0]
        # the swarm collapses toward its south-east quadrant
        assert final[0] >= (box.min_x + box.max_x) // 2
        assert final[1] <= (box.min_y + box.max_y) // 2 + 1


class TestManhattanHopper:
    def test_straight_chain_already_taut(self):
        chain = OpenChain([(0, 0), (1, 0), (2, 0)])
        assert chain.is_taut()
        ok, rounds = ManhattanHopper(chain).run()
        assert ok and rounds == 0

    def test_shortens_to_optimal(self):
        rng = random.Random(6)
        pts = [(0, 0)]
        for _ in range(80):
            x, y = pts[-1]
            dx, dy = rng.choice([(1, 0), (-1, 0), (0, 1), (0, -1)])
            pts.append((x + dx, y + dy))
        ok, rounds, chain = shorten_open_chain(pts)
        assert ok
        assert chain.n == chain.optimal_length()
        assert rounds <= 4 * 2 * len(pts) + 64

    def test_endpoints_fixed(self):
        pts = [(0, 0), (0, 1), (1, 1), (1, 0), (2, 0), (2, 1)]
        ok, _, chain = shorten_open_chain(list(pts))
        assert ok
        assert chain.positions[0] == pts[0]
        assert chain.positions[-1] == pts[-1]

    def test_connectivity_during_shortening(self):
        rng = random.Random(7)
        pts = [(0, 0)]
        for _ in range(40):
            x, y = pts[-1]
            dx, dy = rng.choice([(1, 0), (-1, 0), (0, 1), (0, -1)])
            pts.append((x + dx, y + dy))
        hopper = ManhattanHopper(OpenChain(pts))
        for _ in range(600):
            hopper.step()
            chain_pts = hopper.chain.positions
            for a, b in zip(chain_pts, chain_pts[1:]):
                assert manhattan(a, b) <= 1
            if hopper.chain.is_taut():
                break
        assert hopper.chain.is_taut()

    def test_validation(self):
        with pytest.raises(ChainError):
            OpenChain([(0, 0)])
        with pytest.raises(ChainError):
            OpenChain([(0, 0), (3, 0)])
        with pytest.raises(ChainError):
            ManhattanHopper(OpenChain([(0, 0), (1, 0)]), emit_interval=0)

    def test_linear_growth(self):
        rng = random.Random(8)

        def rounds_for(n):
            pts = [(0, 0)]
            for _ in range(n - 1):
                x, y = pts[-1]
                dx, dy = rng.choice([(1, 0), (-1, 0), (0, 1), (0, -1)])
                pts.append((x + dx, y + dy))
            ok, r, _ = shorten_open_chain(pts)
            assert ok
            return r

        r64, r256 = rounds_for(64), rounds_for(256)
        assert r256 <= 8 * r64 + 128          # roughly linear growth
