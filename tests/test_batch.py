"""BatchSimulator: fleet gathering, ordering, process-pool parity."""

import random

import pytest

from repro.core.batch import BatchResult, BatchSimulator, gather_batch
from repro.core.simulator import Simulator, gather
from repro.chains import crenellation, random_chain, square_ring


def _fleet(sizes=(8, 12, 16)):
    return [square_ring(s) for s in sizes]


class TestBatchBasics:
    def test_results_in_input_order(self):
        batch = gather_batch(_fleet())
        assert [r.initial_n for r in batch] == [4 * (s - 1) for s in (8, 12, 16)]
        assert batch.all_gathered
        assert batch.gathered_count == batch.n_chains == 3

    def test_matches_single_simulator(self):
        pts = square_ring(10)
        batch = gather_batch([pts], engine="vectorized")
        single = gather(list(pts), engine="vectorized")
        assert batch[0].rounds == single.rounds
        assert batch[0].final_positions == single.final_positions

    def test_engines_agree(self):
        rng = random.Random(7)
        chains = [random_chain(48, rng) for _ in range(3)]
        ref = gather_batch(chains, engine="reference")
        vec = gather_batch(chains, engine="vectorized")
        assert [r.rounds for r in ref] == [r.rounds for r in vec]
        assert [r.final_positions for r in ref] == [r.final_positions for r in vec]

    def test_keep_reports_false_strips_reports(self):
        batch = gather_batch(_fleet((8,)), keep_reports=False)
        assert batch[0].reports == []
        assert batch[0].gathered

    def test_aggregates_and_summary(self):
        batch = gather_batch(_fleet())
        assert batch.total_robots == sum(r.initial_n for r in batch)
        assert batch.total_rounds == sum(r.rounds for r in batch)
        assert batch.max_rounds_per_robot > 0
        assert "3/3 gathered" in batch.summary()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            BatchSimulator(_fleet(), engine="warp")

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            BatchSimulator(_fleet(), workers=0)

    def test_empty_fleet(self):
        batch = gather_batch([])
        assert batch.n_chains == 0
        assert batch.all_gathered            # vacuously

    def test_max_rounds_propagates(self):
        batch = gather_batch([square_ring(20)], max_rounds=1)
        assert not batch[0].gathered
        assert batch[0].rounds == 1


def _result_key(r):
    return (r.gathered, r.stalled, r.rounds, r.initial_n, r.final_n,
            tuple(r.final_positions),
            tuple((rep.round_index, rep.n_before, rep.n_after, rep.hops,
                   rep.runs_started, tuple(sorted(
                       (k.value, v) for k, v in rep.runs_terminated.items())),
                   rep.active_runs, tuple(rep.merges))
                  for rep in r.reports))


class TestBackendDeterminism:
    """Every backend × workers combination is bit-deterministic.

    The simulation itself is deterministic (no RNG inside the round
    pipeline), so ``backend="fleet"``, ``"process"`` and ``"auto"``
    must produce identical per-chain results — including full report
    streams and the fleet-of-one kernel path — under any ``workers``
    sharding, and must not consume or perturb the caller's RNG
    streams.
    """

    FLEET = staticmethod(lambda: (
        [random_chain(40 + 12 * k, random.Random(100 + k)) for k in range(3)]
        + [crenellation(5, 1, 4), square_ring(10)]))

    def test_backends_and_sharding_identical(self):
        chains = self.FLEET()
        combos = [("fleet", 1), ("fleet", 2), ("fleet", 3),
                  ("process", 1), ("process", 2), ("auto", 1), ("auto", 2)]
        keys = None
        for backend, workers in combos:
            batch = gather_batch([list(c) for c in chains], backend=backend,
                                 workers=workers)
            got = [_result_key(r) for r in batch]
            if keys is None:
                keys = got
            else:
                assert got == keys, f"backend={backend} workers={workers}"

    def test_single_chain_auto_is_fleet_of_one(self):
        # auto + kernel engine routes one chain through the fleet
        # backend; must equal the process backend bit for bit
        pts = crenellation(6, 1, 5)
        auto = gather_batch([list(pts)], backend="auto")
        proc = gather_batch([list(pts)], backend="process")
        assert BatchSimulator([list(pts)]).backend == "fleet"
        assert [_result_key(r) for r in auto] == \
            [_result_key(r) for r in proc]

    def test_rng_streams_untouched(self):
        # gathering must not advance or reseed the global RNG streams
        # (sweeps interleave chain generation with batch runs)
        import numpy as np
        random.seed(0xDEAD)
        np.random.seed(0xBEEF)
        state_py = random.getstate()
        state_np = np.random.get_state()
        for backend, workers in [("fleet", 1), ("fleet", 2), ("process", 2)]:
            gather_batch(self.FLEET(), backend=backend, workers=workers,
                         keep_reports=False)
        assert random.getstate() == state_py
        fresh = np.random.get_state()
        assert fresh[0] == state_np[0]
        assert (fresh[1] == state_np[1]).all()
        assert fresh[2:] == state_np[2:]

    def test_repeated_runs_identical(self):
        chains = self.FLEET()
        a = gather_batch([list(c) for c in chains], backend="fleet")
        b = gather_batch([list(c) for c in chains], backend="fleet")
        assert [_result_key(r) for r in a] == [_result_key(r) for r in b]

    def test_stream_matches_batch_any_slots_and_workers(self):
        # the streaming pipeline (bounded arena, mid-run admission,
        # slot reuse) is the same per-chain computation: every slot
        # budget and worker sharding reproduces gather_batch bit for bit
        chains = [list(c) for c in self.FLEET()]
        want = [_result_key(r) for r in gather_batch(chains)]
        for slots, workers in [(1, 1), (2, 1), (len(chains), 1), (2, 2)]:
            sim = BatchSimulator([], engine="kernel", backend="fleet",
                                 workers=workers)
            got = dict(sim.run_stream(iter(chains), slots=slots))
            assert [_result_key(got[i]) for i in range(len(chains))] \
                == want, f"slots={slots} workers={workers}"

    def test_gather_stream_convenience(self):
        from repro.core.batch import gather_stream
        chains = [list(square_ring(8)), list(crenellation(4, 1, 4))]
        want = [_result_key(r) for r in gather_batch(chains)]
        got = dict(gather_stream(iter(chains), slots=1))
        assert [_result_key(got[i]) for i in range(len(chains))] == want


class TestProcessPool:
    def test_parallel_equals_serial(self):
        chains = _fleet((8, 10, 12, 14))
        serial = gather_batch(chains, workers=1)
        parallel = gather_batch(chains, workers=2)
        assert parallel.workers == 2
        assert [r.rounds for r in serial] == [r.rounds for r in parallel]
        assert [r.final_positions for r in serial] == \
            [r.final_positions for r in parallel]

    def test_workers_capped_by_fleet_size(self):
        batch = gather_batch([square_ring(8)], workers=8)
        assert batch.workers == 1
