"""BatchSimulator: fleet gathering, ordering, process-pool parity."""

import random

import pytest

from repro.core.batch import BatchResult, BatchSimulator, gather_batch
from repro.core.simulator import Simulator, gather
from repro.chains import random_chain, square_ring


def _fleet(sizes=(8, 12, 16)):
    return [square_ring(s) for s in sizes]


class TestBatchBasics:
    def test_results_in_input_order(self):
        batch = gather_batch(_fleet())
        assert [r.initial_n for r in batch] == [4 * (s - 1) for s in (8, 12, 16)]
        assert batch.all_gathered
        assert batch.gathered_count == batch.n_chains == 3

    def test_matches_single_simulator(self):
        pts = square_ring(10)
        batch = gather_batch([pts], engine="vectorized")
        single = gather(list(pts), engine="vectorized")
        assert batch[0].rounds == single.rounds
        assert batch[0].final_positions == single.final_positions

    def test_engines_agree(self):
        rng = random.Random(7)
        chains = [random_chain(48, rng) for _ in range(3)]
        ref = gather_batch(chains, engine="reference")
        vec = gather_batch(chains, engine="vectorized")
        assert [r.rounds for r in ref] == [r.rounds for r in vec]
        assert [r.final_positions for r in ref] == [r.final_positions for r in vec]

    def test_keep_reports_false_strips_reports(self):
        batch = gather_batch(_fleet((8,)), keep_reports=False)
        assert batch[0].reports == []
        assert batch[0].gathered

    def test_aggregates_and_summary(self):
        batch = gather_batch(_fleet())
        assert batch.total_robots == sum(r.initial_n for r in batch)
        assert batch.total_rounds == sum(r.rounds for r in batch)
        assert batch.max_rounds_per_robot > 0
        assert "3/3 gathered" in batch.summary()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            BatchSimulator(_fleet(), engine="warp")

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            BatchSimulator(_fleet(), workers=0)

    def test_empty_fleet(self):
        batch = gather_batch([])
        assert batch.n_chains == 0
        assert batch.all_gathered            # vacuously

    def test_max_rounds_propagates(self):
        batch = gather_batch([square_ring(20)], max_rounds=1)
        assert not batch[0].gathered
        assert batch[0].rounds == 1


class TestProcessPool:
    def test_parallel_equals_serial(self):
        chains = _fleet((8, 10, 12, 14))
        serial = gather_batch(chains, workers=1)
        parallel = gather_batch(chains, workers=2)
        assert parallel.workers == 2
        assert [r.rounds for r in serial] == [r.rounds for r in parallel]
        assert [r.final_positions for r in serial] == \
            [r.final_positions for r in parallel]

    def test_workers_capped_by_fleet_size(self):
        batch = gather_batch([square_ring(8)], workers=8)
        assert batch.workers == 1
