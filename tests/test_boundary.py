"""Polyomino outlines: the boundary walker."""

import pytest
from hypothesis import given, strategies as st

import random

from repro.errors import ChainError
from repro.grid.lattice import manhattan
from repro.chains.boundary import (
    boundary_edges, fill_holes, is_connected, outline,
)
from repro.chains.random_blobs import random_polyomino


class TestOutlineBasics:
    def test_single_cell(self):
        ring = outline({(0, 0)})
        assert sorted(ring) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert len(ring) == 4

    def test_rectangle(self):
        ring = outline({(x, y) for x in range(3) for y in range(2)})
        assert len(ring) == 2 * 3 + 2 * 2
        # counter-clockwise: area via the shoelace formula is positive
        area = sum(ring[i][0] * ring[(i + 1) % len(ring)][1] -
                   ring[(i + 1) % len(ring)][0] * ring[i][1]
                   for i in range(len(ring)))
        assert area > 0

    def test_outline_is_closed_chain(self):
        ring = outline({(0, 0), (1, 0), (1, 1)})
        n = len(ring)
        for i in range(n):
            assert manhattan(ring[i], ring[(i + 1) % n]) == 1

    def test_diagonal_cells_are_disconnected(self):
        # cells touching only at a corner are not 4-connected; and in a
        # hole-free 4-connected polyomino a pinch point cannot occur
        # (any connecting path would enclose an off-diagonal hole)
        with pytest.raises(ChainError):
            outline({(0, 0), (1, 1)})

    def test_s_tetromino(self):
        ring = outline({(0, 0), (1, 0), (1, 1), (2, 1)})
        assert len(ring) == 10
        assert len(set(ring)) == 10            # no revisited corner points

    def test_no_edge_revisits(self):
        blob = {(x, y) for x in range(4) for y in range(3)} | {(1, 3), (2, 3)}
        ring = outline(blob)
        n = len(ring)
        edges = {(ring[i], ring[(i + 1) % n]) for i in range(n)}
        assert len(edges) == n

    def test_empty_raises(self):
        with pytest.raises(ChainError):
            outline(set())

    def test_disconnected_raises(self):
        with pytest.raises(ChainError):
            outline({(0, 0), (5, 5)})

    def test_holes_raise(self):
        donut = {(x, y) for x in range(3) for y in range(3)} - {(1, 1)}
        with pytest.raises(ChainError):
            outline(donut)
        assert len(outline(fill_holes(donut))) == 12


class TestFillHoles:
    def test_no_holes_unchanged(self):
        cells = {(0, 0), (1, 0)}
        assert fill_holes(cells) == cells

    def test_fills_cavity(self):
        donut = {(x, y) for x in range(3) for y in range(3)} - {(1, 1)}
        assert (1, 1) in fill_holes(donut)

    def test_empty(self):
        assert fill_holes(set()) == set()


class TestConnectivity:
    def test_connected(self):
        assert is_connected({(0, 0), (1, 0), (1, 1)})

    def test_disconnected(self):
        assert not is_connected({(0, 0), (2, 0)})

    def test_empty(self):
        assert is_connected(set())


class TestBoundaryEdges:
    def test_single_cell_edge_count(self):
        assert len(boundary_edges({(0, 0)})) == 4

    def test_interior_cells_contribute_nothing(self):
        block = {(x, y) for x in range(3) for y in range(3)}
        assert len(boundary_edges(block)) == 12


class TestRandomBlobs:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=60))
    def test_outline_always_valid(self, seed, cells):
        blob = random_polyomino(cells, random.Random(seed))
        ring = outline(blob)
        n = len(ring)
        assert n % 2 == 0 and n >= 4
        for i in range(n):
            assert manhattan(ring[i], ring[(i + 1) % n]) == 1
