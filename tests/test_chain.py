"""ClosedChain: structure, validation, contraction semantics."""

import pytest
from hypothesis import given

from repro.errors import ChainError
from repro.core.chain import ClosedChain, MergeRecord
from repro.chains import square_ring

from tests.conftest import closed_chain_positions


SQUARE4 = [(0, 0), (1, 0), (1, 1), (0, 1)]


class TestConstruction:
    def test_basic(self):
        c = ClosedChain(SQUARE4)
        assert c.n == len(c) == 4
        assert c.positions == SQUARE4
        assert c.ids == [0, 1, 2, 3]

    def test_from_edges(self):
        c = ClosedChain.from_edges((0, 0), [(1, 0), (0, 1), (-1, 0), (0, -1)])
        assert c.positions == SQUARE4

    def test_from_edges_must_close(self):
        with pytest.raises(ChainError):
            ClosedChain.from_edges((0, 0), [(1, 0), (0, 1)])

    def test_broken_chain_rejected(self):
        with pytest.raises(ChainError):
            ClosedChain([(0, 0), (2, 0), (2, 1), (0, 1)])

    def test_empty_rejected(self):
        with pytest.raises(ChainError):
            ClosedChain([])

    def test_initial_validation_rejects_coincident_neighbors(self):
        with pytest.raises(ChainError):
            ClosedChain([(0, 0), (0, 0), (1, 0), (1, 1), (0, 1), (0, 1)],
                        require_disjoint_neighbors=True)

    def test_initial_validation_rejects_tiny(self):
        with pytest.raises(ChainError):
            ClosedChain([(0, 0), (1, 0)], require_disjoint_neighbors=True)

    def test_copy_is_independent(self):
        c = ClosedChain(SQUARE4)
        d = c.copy()
        d.apply_moves({0: (1, 0)})
        assert c.position(0) == (0, 0)
        assert d.position(0) == (1, 0)
        assert d.ids == c.ids


class TestAccessors:
    def test_cyclic_indexing(self):
        c = ClosedChain(SQUARE4)
        assert c.position(4) == c.position(0)
        assert c.position(-1) == c.position(3)
        assert c.id_at(5) == 1

    def test_edges(self):
        c = ClosedChain(SQUARE4)
        assert c.edges() == [(1, 0), (0, 1), (-1, 0), (0, -1)]
        assert c.edge(-1) == (0, -1)

    def test_id_index_round_trip(self):
        c = ClosedChain(square_ring(6))
        for i in range(c.n):
            assert c.index_of_id(c.id_at(i)) == i

    def test_neighbor_id(self):
        c = ClosedChain(SQUARE4)
        assert c.neighbor_id(0, 1) == 1
        assert c.neighbor_id(0, -1) == 3
        with pytest.raises(ValueError):
            c.neighbor_id(0, 2)

    def test_has_id(self):
        c = ClosedChain(SQUARE4)
        assert c.has_id(2)
        assert not c.has_id(99)

    def test_bounding_box_and_gathered(self):
        assert ClosedChain(SQUARE4).is_gathered()
        assert not ClosedChain(square_ring(4)).is_gathered()


class TestMoves:
    def test_apply_moves(self):
        c = ClosedChain(SQUARE4)
        c.apply_moves({0: (0, 1), 1: (0, 1)})
        assert c.position(0) == (0, 1)
        assert c.position(1) == (1, 1)

    def test_illegal_hop_rejected(self):
        c = ClosedChain(SQUARE4)
        with pytest.raises(ChainError):
            c.apply_moves({0: (2, 0)})


class TestContraction:
    def test_mover_survives(self):
        # robot 1 hops onto robot 2 -> robot 2 (stationary white) removed
        c = ClosedChain([(0, 0), (1, 0), (1, 1), (0, 1)])
        c.apply_moves({1: (0, 1)})
        records = c.contract_coincident({1})
        assert records == [MergeRecord(survivor_id=1, removed_id=2,
                                       position=(1, 1))]
        assert c.n == 3
        assert c.has_id(1) and not c.has_id(2)

    def test_tie_keeps_lower_id(self):
        c = ClosedChain([(0, 0), (1, 0), (1, 1), (0, 1)])
        c.apply_moves({1: (0, 1), 2: (0, 0)})   # both moved, now coincident
        records = c.contract_coincident({1, 2})
        assert len(records) == 1
        assert records[0].survivor_id == 1

    def test_cascading_contraction(self):
        # spike: both whites at the same point as the hopped black
        c = ClosedChain([(1, 0), (1, 1), (1, 0), (0, 0), (0, -1),
                         (1, -1), (2, -1), (2, 0)], validate=True)
        c.apply_moves({1: (0, -1)})
        records = c.contract_coincident({1})
        assert len(records) == 2                 # both whites removed
        assert c.n == 6

    def test_full_collapse(self):
        c = ClosedChain([(0, 0), (1, 0), (1, 1), (0, 1)])
        c.apply_moves({0: (1, 1), 1: (0, 1), 2: (0, 0), 3: (1, 0)})
        c.contract_coincident({0, 1, 2, 3})
        assert c.n == 1
        assert c.positions == [(1, 1)]

    def test_no_merge_for_non_neighbors(self):
        # two robots share a cell but are not chain neighbours
        pts = [(0, 0), (1, 0), (1, 1), (1, 0), (2, 0), (2, -1), (1, -1), (0, -1)]
        c = ClosedChain(pts)
        records = c.contract_coincident(set())
        assert records == []
        assert c.n == 8


class TestValidation:
    @given(closed_chain_positions())
    def test_generated_chains_are_valid_initial(self, pts):
        chain = ClosedChain(pts, require_disjoint_neighbors=True)
        assert chain.n % 2 == 0
        assert chain.n >= 4
