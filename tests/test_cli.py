"""The command-line interface."""

import json
import os

import pytest

from repro.cli import main
from repro.core.chain import ClosedChain
from repro.chains import square_ring
from repro.io import save_chain


class TestGather:
    def test_family(self, capsys):
        assert main(["gather", "--family", "square", "--n", "32"]) == 0
        out = capsys.readouterr().out
        assert "gathered" in out

    def test_loaded_chain(self, tmp_path, capsys):
        path = save_chain(str(tmp_path / "c.json"),
                          ClosedChain(square_ring(8)))
        assert main(["gather", "--chain", path]) == 0

    def test_json_metrics(self, capsys):
        assert main(["gather", "--family", "needle", "--n", "24",
                     "--json"]) == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        doc = json.loads(payload)
        assert doc["gathered"] == 1

    def test_render_strip(self, capsys):
        assert main(["gather", "--family", "square", "--n", "32",
                     "--render"]) == 0
        assert "round" in capsys.readouterr().out

    def test_stall_exit_code(self, capsys):
        assert main(["gather", "--family", "square", "--n", "80",
                     "--max-rounds", "2"]) == 2

    def test_parameter_overrides(self, capsys):
        assert main(["gather", "--family", "square", "--n", "32",
                     "--interval", "7", "--viewing", "15",
                     "--k-max", "5"]) == 0

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["gather", "--family", "dodecahedron"])

    def test_vectorized_engine(self, capsys):
        assert main(["gather", "--family", "octagon", "--n", "48",
                     "--engine", "vectorized"]) == 0


class TestRender:
    def test_ascii(self, capsys):
        assert main(["render", "--family", "square", "--n", "24"]) == 0
        assert "1" in capsys.readouterr().out

    def test_svg(self, tmp_path, capsys):
        path = str(tmp_path / "out.svg")
        assert main(["render", "--family", "square", "--n", "24",
                     "--svg", path]) == 0
        assert os.path.exists(path)


class TestVerify:
    def test_exhaustive_small(self, capsys):
        assert main(["verify", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "71 configurations" in out

    def test_limit_sampling(self, capsys):
        assert main(["verify", "--n", "12", "--limit", "20"]) == 0


class TestBatchStream:
    """``repro batch --stream``: JSONL in, streaming results out."""

    @staticmethod
    def _write_jsonl(tmp_path, fleets):
        path = tmp_path / "chains.jsonl"
        lines = [json.dumps([list(p) for p in pts]) for pts in fleets]
        path.write_text("\n".join(lines) + "\n\n")   # trailing blank ok
        return str(path)

    def test_stream_file(self, tmp_path, capsys):
        path = self._write_jsonl(tmp_path, [square_ring(8), square_ring(12)])
        assert main(["batch", "--stream", path, "--slots", "1"]) == 0
        out = capsys.readouterr().out
        assert "2/2 gathered" in out

    def test_stream_json_lines(self, tmp_path, capsys):
        path = self._write_jsonl(tmp_path,
                                 [square_ring(8), square_ring(10)])
        assert main(["batch", "--stream", path, "--slots", "2",
                     "--json"]) == 0
        out = capsys.readouterr().out
        rows = [json.loads(line) for line in out.splitlines()
                if line.startswith("{")]
        assert sorted(r["chain"] for r in rows) == [0, 1]
        assert all(r["gathered"] for r in rows)

    def test_stream_stdin(self, tmp_path, capsys, monkeypatch):
        import io
        payload = json.dumps([list(p) for p in square_ring(8)]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(payload))
        assert main(["batch", "--stream", "-"]) == 0
        assert "1/1 gathered" in capsys.readouterr().out

    def test_stream_budget_exit_code(self, tmp_path, capsys):
        path = self._write_jsonl(tmp_path, [square_ring(20)])
        assert main(["batch", "--stream", path, "--max-rounds", "2"]) == 2

    def test_stream_requires_kernel_engine(self, tmp_path):
        path = self._write_jsonl(tmp_path, [square_ring(8)])
        with pytest.raises(SystemExit):
            main(["batch", "--stream", path, "--engine", "reference"])

    def test_stream_rejects_process_backend(self, tmp_path):
        path = self._write_jsonl(tmp_path, [square_ring(8)])
        with pytest.raises(SystemExit):
            main(["batch", "--stream", path, "--backend", "process"])

    def test_stream_rejects_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(SystemExit):
            main(["batch", "--stream", str(path)])


class TestMisc:
    def test_families_listing(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "square" in out and "octagon" in out

    def test_experiment_subset(self, capsys):
        assert main(["experiment", "--ids", "EXP-P1", "--quick"]) == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
