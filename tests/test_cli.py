"""The command-line interface."""

import json
import os

import pytest

from repro.cli import main
from repro.core.chain import ClosedChain
from repro.chains import square_ring
from repro.io import save_chain


class TestGather:
    def test_family(self, capsys):
        assert main(["gather", "--family", "square", "--n", "32"]) == 0
        out = capsys.readouterr().out
        assert "gathered" in out

    def test_loaded_chain(self, tmp_path, capsys):
        path = save_chain(str(tmp_path / "c.json"),
                          ClosedChain(square_ring(8)))
        assert main(["gather", "--chain", path]) == 0

    def test_json_metrics(self, capsys):
        assert main(["gather", "--family", "needle", "--n", "24",
                     "--json"]) == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        doc = json.loads(payload)
        assert doc["gathered"] == 1

    def test_render_strip(self, capsys):
        assert main(["gather", "--family", "square", "--n", "32",
                     "--render"]) == 0
        assert "round" in capsys.readouterr().out

    def test_stall_exit_code(self, capsys):
        assert main(["gather", "--family", "square", "--n", "80",
                     "--max-rounds", "2"]) == 2

    def test_parameter_overrides(self, capsys):
        assert main(["gather", "--family", "square", "--n", "32",
                     "--interval", "7", "--viewing", "15",
                     "--k-max", "5"]) == 0

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["gather", "--family", "dodecahedron"])

    def test_vectorized_engine(self, capsys):
        assert main(["gather", "--family", "octagon", "--n", "48",
                     "--engine", "vectorized"]) == 0


class TestRender:
    def test_ascii(self, capsys):
        assert main(["render", "--family", "square", "--n", "24"]) == 0
        assert "1" in capsys.readouterr().out

    def test_svg(self, tmp_path, capsys):
        path = str(tmp_path / "out.svg")
        assert main(["render", "--family", "square", "--n", "24",
                     "--svg", path]) == 0
        assert os.path.exists(path)


class TestVerify:
    def test_exhaustive_small(self, capsys):
        assert main(["verify", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "71 configurations" in out

    def test_limit_sampling(self, capsys):
        assert main(["verify", "--n", "12", "--limit", "20"]) == 0


class TestBatchStream:
    """``repro batch --stream``: JSONL in, streaming results out."""

    @staticmethod
    def _write_jsonl(tmp_path, fleets):
        path = tmp_path / "chains.jsonl"
        lines = [json.dumps([list(p) for p in pts]) for pts in fleets]
        path.write_text("\n".join(lines) + "\n\n")   # trailing blank ok
        return str(path)

    def test_stream_file(self, tmp_path, capsys):
        path = self._write_jsonl(tmp_path, [square_ring(8), square_ring(12)])
        assert main(["batch", "--stream", path, "--slots", "1"]) == 0
        out = capsys.readouterr().out
        assert "2/2 gathered" in out

    def test_stream_json_lines(self, tmp_path, capsys):
        path = self._write_jsonl(tmp_path,
                                 [square_ring(8), square_ring(10)])
        assert main(["batch", "--stream", path, "--slots", "2",
                     "--json"]) == 0
        out = capsys.readouterr().out
        rows = [json.loads(line) for line in out.splitlines()
                if line.startswith("{")]
        assert sorted(r["chain"] for r in rows) == [0, 1]
        assert all(r["gathered"] for r in rows)

    def test_stream_stdin(self, tmp_path, capsys, monkeypatch):
        import io
        payload = json.dumps([list(p) for p in square_ring(8)]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(payload))
        assert main(["batch", "--stream", "-"]) == 0
        assert "1/1 gathered" in capsys.readouterr().out

    def test_stream_closed_stdin_is_empty_stream(self, capsys, monkeypatch):
        # a detached stdin (`repro batch --stream - 0<&-`, daemonised
        # parents) used to crash iterating None; it must behave exactly
        # like an empty pipe: clean 0/0 stats, exit 0
        import io
        closed = io.StringIO()
        closed.close()
        for stand_in in (None, closed):
            monkeypatch.setattr("sys.stdin", stand_in)
            assert main(["batch", "--stream", "-"]) == 0
            assert "0/0 gathered" in capsys.readouterr().out

    def test_stream_closed_stdin_writes_clean_wal(self, tmp_path, capsys,
                                                  monkeypatch):
        monkeypatch.setattr("sys.stdin", None)
        wal = str(tmp_path / "wal")
        assert main(["batch", "--stream", "-", "--wal", wal]) == 0
        text = (tmp_path / "wal" / "wal.ndjson").read_text()
        assert '"stream_end"' in text

    def test_stream_budget_exit_code(self, tmp_path, capsys):
        path = self._write_jsonl(tmp_path, [square_ring(20)])
        assert main(["batch", "--stream", path, "--max-rounds", "2"]) == 2

    def test_stream_requires_kernel_engine(self, tmp_path):
        path = self._write_jsonl(tmp_path, [square_ring(8)])
        with pytest.raises(SystemExit):
            main(["batch", "--stream", path, "--engine", "reference"])

    def test_stream_rejects_process_backend(self, tmp_path):
        path = self._write_jsonl(tmp_path, [square_ring(8)])
        with pytest.raises(SystemExit):
            main(["batch", "--stream", path, "--backend", "process"])

    def test_stream_rejects_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(SystemExit):
            main(["batch", "--stream", str(path)])


class TestSupervisedStream:
    """``repro batch --stream`` under supervision (DESIGN.md §2.13)."""

    @staticmethod
    def _write_jsonl(tmp_path, fleets, name="chains.jsonl"):
        path = tmp_path / name
        lines = [json.dumps([list(p) for p in pts]) for pts in fleets]
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_skip_bad_lines_quarantined_with_line_number(
            self, tmp_path, capsys):
        path = tmp_path / "mixed.jsonl"
        good = json.dumps([list(p) for p in square_ring(8)])
        path.write_text(good + "\nnot json\n" + good + "\n")
        dl = tmp_path / "dead.ndjson"
        rc = main(["batch", "--stream", str(path), "--skip-bad-lines",
                   "--dead-letter", str(dl)])
        assert rc == 2                      # bad line ⇒ not fully clean
        out = capsys.readouterr().out
        assert "2/2 gathered" in out
        assert "bad_lines=1" in out
        docs = [json.loads(s) for s in dl.read_text().splitlines()]
        assert docs[0]["kind"] == "bad-line" and docs[0]["line"] == 2

    def test_skip_bad_lines_requires_dead_letter(self, tmp_path):
        path = self._write_jsonl(tmp_path, [square_ring(8)])
        with pytest.raises(SystemExit):
            main(["batch", "--stream", path, "--skip-bad-lines"])

    def test_poison_chain_quarantined_not_fatal(self, tmp_path, capsys):
        path = tmp_path / "poison.jsonl"
        good = json.dumps([list(p) for p in square_ring(8)])
        path.write_text(good + "\n" + json.dumps([[0, 0], [1, 0]])
                        + "\n" + good + "\n")
        dl = tmp_path / "dead.ndjson"
        out_file = tmp_path / "out.ndjson"
        rc = main(["batch", "--stream", str(path), "--dead-letter",
                   str(dl), "--out", str(out_file)])
        assert rc == 2
        assert "quarantined=1" in capsys.readouterr().out
        docs = [json.loads(s) for s in dl.read_text().splitlines()]
        assert docs[0]["chain"] == 1 and docs[0]["quarantined"]
        # quarantined chains never reach the results ledger
        rows = [json.loads(s) for s in out_file.read_text().splitlines()]
        assert sorted(r["chain"] for r in rows) == [0, 2]

    def test_wal_audit_clean_and_tampered(self, tmp_path, capsys):
        path = self._write_jsonl(
            tmp_path, [square_ring(8), square_ring(12), square_ring(8)])
        wal = tmp_path / "wal"
        assert main(["batch", "--stream", path, "--slots", "2",
                     "--wal", str(wal)]) == 0
        assert main(["wal", "audit", str(wal), "--stream", path]) == 0
        assert "audit ok" in capsys.readouterr().out
        # doctor one round record: swap its move blob for its starts
        log = wal / "wal.ndjson"
        recs = [json.loads(s) for s in log.read_text().splitlines()]
        victim = next(r for r in recs
                      if r["type"] == "round" and r.get("mv"))
        victim["mv"], victim["st"] = victim["st"], victim["mv"]
        log.write_text("\n".join(json.dumps(r) for r in recs) + "\n")
        assert main(["wal", "audit", str(wal), "--stream", path]) == 1
        out = capsys.readouterr().out
        assert "audit FAILED" in out and str(victim["lsn"]) in out

    def test_wal_audit_missing_dir(self, tmp_path, capsys):
        assert main(["wal", "audit", str(tmp_path / "nope")]) == 1
        assert "audit FAILED" in capsys.readouterr().out

    def test_wal_audit_skips_bad_lines_like_the_run_did(
            self, tmp_path, capsys):
        path = tmp_path / "mixed.jsonl"
        good = json.dumps([list(p) for p in square_ring(8)])
        path.write_text(good + "\nnot json\n" + good + "\n")
        wal = tmp_path / "wal"
        dl = tmp_path / "dead.ndjson"
        assert main(["batch", "--stream", str(path), "--wal", str(wal),
                     "--skip-bad-lines", "--dead-letter", str(dl)]) == 2
        # the bad line consumed no stream index, so the audit must
        # filter it out exactly as the logged run did
        assert main(["wal", "audit", str(wal), "--stream",
                     str(path)]) == 0
        out = capsys.readouterr().out
        assert "audit ok" in out and "1 unparseable" in out


class TestMisc:
    def test_families_listing(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "square" in out and "octagon" in out

    def test_experiment_subset(self, capsys):
        assert main(["experiment", "--ids", "EXP-P1", "--quick"]) == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
