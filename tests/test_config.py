"""Parameters: validation and derived quantities."""

import pytest

from repro.core.config import DEFAULT_PARAMETERS, PROOF_PARAMETERS, Parameters


class TestDefaults:
    def test_paper_constants(self):
        assert DEFAULT_PARAMETERS.viewing_path_length == 11
        assert DEFAULT_PARAMETERS.start_interval == 13
        assert DEFAULT_PARAMETERS.passing_distance == 3
        assert DEFAULT_PARAMETERS.travel_steps == 3

    def test_effective_k_max_derivation(self):
        assert DEFAULT_PARAMETERS.effective_k_max == 10
        assert PROOF_PARAMETERS.effective_k_max == 2
        assert Parameters(k_max=50).effective_k_max == 10   # visibility cap
        assert Parameters(viewing_path_length=15).effective_k_max == 14

    def test_round_budget_linear(self):
        p = DEFAULT_PARAMETERS
        assert p.round_budget(100) >= 2 * 13 * 100 + 100
        assert p.round_budget(200) - p.round_budget(100) == 2800

    def test_with_functional_update(self):
        p = DEFAULT_PARAMETERS.with_(start_interval=7)
        assert p.start_interval == 7
        assert DEFAULT_PARAMETERS.start_interval == 13


class TestValidation:
    def test_viewing_range_minimum(self):
        with pytest.raises(ValueError):
            Parameters(viewing_path_length=3)

    def test_positive_interval(self):
        with pytest.raises(ValueError):
            Parameters(start_interval=0)

    def test_positive_k_max(self):
        with pytest.raises(ValueError):
            Parameters(k_max=0)

    def test_positive_passing(self):
        with pytest.raises(ValueError):
            Parameters(passing_distance=0)

    def test_positive_travel(self):
        with pytest.raises(ValueError):
            Parameters(travel_steps=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PARAMETERS.start_interval = 5  # type: ignore
