"""Cross-engine differential conformance suite.

One parametrized harness replacing the scattered per-engine
equivalence tests: every engine variant runs every scenario family in
lockstep with the reference engine and must produce **bit-identical**
rounds — positions, ids, full :class:`RoundReport` content (hops,
merge records, run starts/terminations with exact stop reasons,
conflict counters) and the live run-registry states themselves.

Families: rings, stairways, serpentines, blobs, perturbed shapes,
merge-dense crenellations/combs, and mid-gathering snapshots (states
captured partway through a reference gathering, restarted under every
engine).  Both kernel decision paths (adaptive scalar and forced
NumPy) are exercised, as are the hypothesis-generated random and
merge-dense chains.  The detector-level equivalence (reference scan
vs NumPy scan) rides along, since the engines' conformance rests on
it.
"""

import random

import pytest
from hypothesis import given, settings

from repro.core.engine_vectorized import find_merge_patterns_np
from repro.core.patterns import find_merge_patterns
from repro.core.runs import RunRegistry
from repro.core.simulator import ENGINES, Simulator
from repro.chains import (
    comb,
    crenellation,
    needle,
    perturb,
    random_chain,
    serpentine_ring,
    spiral,
    square_ring,
    staircase_ring,
    stairway_octagon,
)

from tests.conftest import closed_chain_positions, merge_dense_chain_positions

#: Engines measured against the reference implementation.
VARIANT_ENGINES = [e for e in ENGINES if e != "reference"]

#: Scenario families (deterministic generators so every engine sees
#: the identical chain and failures reproduce).
SCENARIOS = {
    "ring_small": lambda: square_ring(16),
    "ring_large": lambda: square_ring(40),
    "stairway": lambda: stairway_octagon(12, 2),
    "staircase": lambda: staircase_ring(4),
    "serpentine": lambda: serpentine_ring(3, 10, 4),
    "comb": lambda: comb(4),
    "spiral": lambda: spiral(1),
    "blob": lambda: random_chain(110, random.Random(1234)),
    "perturbed": lambda: perturb(list(square_ring(14)), 10,
                                 random.Random(99)),
    "merge_dense": lambda: crenellation(12, 1, 6),
    "merge_dense_tall": lambda: crenellation(6, 1, 10),
}

#: (family, round) pairs for the mid-gathering snapshot states: deep
#: enough that runs, merges and travels are in flight, shallow enough
#: that the chain is still far from gathered.
MID_GATHERING = [("ring_large", 5), ("stairway", 8), ("merge_dense", 2),
                 ("blob", 3)]


def _registry_state(registry: RunRegistry):
    return sorted(
        (r.robot_id, r.direction, r.mode.value, r.target_id,
         r.travel_steps_left, r.axis)
        for r in registry.active_runs())


def _report_key(report):
    return (report.n_before, report.n_after, report.hops,
            report.merge_patterns, report.merges, report.runs_started,
            report.runs_terminated, report.active_runs,
            report.merge_conflicts, report.runner_hop_conflicts)


def assert_conformance(pts, engine, max_rounds=4000, numpy_min_runs=None,
                       check_invariants=True, validate_initial=True):
    """Run one engine in lockstep with the reference; compare every round."""
    a = Simulator(list(pts), engine="reference",
                  check_invariants=check_invariants,
                  validate_initial=validate_initial)
    b = Simulator(list(pts), engine=engine,
                  check_invariants=check_invariants,
                  validate_initial=validate_initial)
    if numpy_min_runs is not None:
        b.engine.numpy_min_runs = numpy_min_runs
    for i in range(max_rounds):
        if a.is_gathered() and b.is_gathered():
            break
        ra = a.step()
        rb = b.step()
        assert a.chain.positions == b.chain.positions, f"round {i}"
        assert a.chain.ids == b.chain.ids, f"round {i}"
        assert _report_key(ra) == _report_key(rb), f"round {i}"
        assert _registry_state(a.engine.registry) == \
            _registry_state(b.engine.registry), f"round {i}"
    assert a.is_gathered() and b.is_gathered()
    return a.round_index


def _mid_state(family, rounds):
    """Positions of a family chain after ``rounds`` reference rounds."""
    sim = Simulator(list(SCENARIOS[family]()), engine="reference",
                    check_invariants=False)
    for _ in range(rounds):
        if sim.is_gathered():
            break
        sim.step()
    return sim.chain.positions


class TestScenarioFamilies:
    @pytest.mark.parametrize("engine", VARIANT_ENGINES)
    @pytest.mark.parametrize("family", sorted(SCENARIOS))
    def test_lockstep(self, family, engine):
        assert_conformance(SCENARIOS[family](), engine)

    @pytest.mark.parametrize("engine", VARIANT_ENGINES)
    @pytest.mark.parametrize("family,rounds", MID_GATHERING,
                             ids=lambda v: str(v))
    def test_mid_gathering_snapshots(self, family, rounds, engine):
        # mid-gathering states need not satisfy the paper's initial
        # assumptions; every engine must accept and continue them
        pts = _mid_state(family, rounds)
        assert_conformance(pts, engine, validate_initial=False)

    def test_full_run_equivalence_all_engines(self):
        pts = square_ring(20)
        results = [Simulator(list(pts), engine=e,
                             check_invariants=False).run()
                   for e in ENGINES]
        assert len({r.rounds for r in results}) == 1
        assert len({tuple(r.final_positions) for r in results}) == 1


class TestKernelDecisionPaths:
    """The kernel's adaptive scalar/NumPy crossover, pinned both ways."""

    @pytest.mark.parametrize("family", ["ring_small", "merge_dense",
                                        "stairway"])
    def test_forced_numpy(self, family):
        assert_conformance(SCENARIOS[family](), "kernel", numpy_min_runs=0)

    @pytest.mark.parametrize("family", ["ring_small", "merge_dense"])
    def test_forced_scalar(self, family):
        assert_conformance(SCENARIOS[family](), "kernel",
                           numpy_min_runs=1 << 30)


class TestPropertyConformance:
    @pytest.mark.parametrize("engine", VARIANT_ENGINES)
    @settings(max_examples=15)
    @given(pts=closed_chain_positions(max_cells=30))
    def test_random_chains(self, engine, pts):
        assert_conformance(pts, engine, check_invariants=False)

    @pytest.mark.parametrize("engine", VARIANT_ENGINES)
    @settings(max_examples=15)
    @given(pts=merge_dense_chain_positions())
    def test_merge_dense_chains(self, engine, pts):
        assert_conformance(pts, engine, check_invariants=False)

    @settings(max_examples=10)
    @given(pts=merge_dense_chain_positions())
    def test_merge_dense_forced_numpy(self, pts):
        assert_conformance(pts, "kernel", check_invariants=False,
                           numpy_min_runs=0)


class TestDetectorConformance:
    """Reference vs NumPy merge detector, pattern for pattern."""

    @staticmethod
    def _normalize(patterns):
        return sorted((p.first_black, p.k, p.direction) for p in patterns)

    @pytest.mark.parametrize("k_max", [1, 2, 3, 10])
    @pytest.mark.parametrize("pts", [
        square_ring(8), square_ring(16), needle(12), comb(3),
        crenellation(4), stairway_octagon(8, 2), spiral(1),
    ], ids=["sq8", "sq16", "needle", "comb", "cren", "oct", "spiral"])
    def test_families(self, pts, k_max):
        assert self._normalize(find_merge_patterns(pts, k_max)) == \
            self._normalize(find_merge_patterns_np(pts, k_max))

    @given(closed_chain_positions(max_cells=35))
    def test_random_chains(self, pts):
        for k_max in (2, 10):
            assert self._normalize(find_merge_patterns(pts, k_max)) == \
                self._normalize(find_merge_patterns_np(pts, k_max))

    @given(merge_dense_chain_positions())
    def test_merge_dense_chains(self, pts):
        for k_max in (1, 10):
            assert self._normalize(find_merge_patterns(pts, k_max)) == \
                self._normalize(find_merge_patterns_np(pts, k_max))

    def test_tiny_chains(self):
        for pts in ([(0, 0), (1, 0)], [(0, 0), (1, 0), (1, 1), (0, 1)]):
            assert self._normalize(find_merge_patterns(pts, 10)) == \
                self._normalize(find_merge_patterns_np(pts, 10))
