"""Linear contract_coincident ≡ the original restart-scan algorithm.

The seed implementation rescanned the whole chain from index 0 after
every single merge (O(n²) worst case).  The current implementation is
one linear pass plus a wrap-around resolution.  These tests pin the
exact survivor-selection and record-ordering semantics against a
faithful reimplementation of the original algorithm, including
multi-merge rounds, co-location blocks and wrap-around cascades.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.chain import ClosedChain, MergeRecord


def original_contract(positions, ids, moved):
    """The seed's restart-scan contraction, on plain lists."""
    pos = list(positions)
    ids = list(ids)
    records = []
    changed = True
    while changed and len(pos) > 1:
        changed = False
        n = len(pos)
        for i in range(n):
            j = (i + 1) % n
            if i == j:
                break
            if pos[i] == pos[j]:
                id_i, id_j = ids[i], ids[j]
                i_moved = id_i in moved
                j_moved = id_j in moved
                if i_moved and not j_moved:
                    keep, drop = i, j
                elif j_moved and not i_moved:
                    keep, drop = j, i
                else:
                    keep, drop = (i, j) if id_i < id_j else (j, i)
                records.append(MergeRecord(ids[keep], ids[drop], pos[keep]))
                del pos[drop]
                del ids[drop]
                changed = True
                break
    return pos, ids, records


def run_both(positions, moved):
    chain = ClosedChain(positions, validate=False)
    expected = original_contract(chain.positions, chain.ids, moved)
    records = chain.contract_coincident(moved)
    return (chain.positions, chain.ids, records), expected


def assert_equivalent(positions, moved):
    got, expected = run_both(positions, moved)
    assert got == expected


class TestPinnedScenarios:
    def test_multi_merge_same_round(self):
        # two independent coincident pairs merge in one call
        pts = [(0, 0), (1, 0), (1, 0), (2, 0), (2, 1), (1, 1), (1, 1), (0, 1)]
        assert_equivalent(pts, moved={2, 5})

    def test_colocated_block_cascade(self):
        # three consecutive robots on one point: merges cascade in order
        pts = [(0, 0), (1, 0), (1, 0), (1, 0), (1, 1), (0, 1)]
        for moved in (set(), {1}, {2}, {3}, {1, 2}, {1, 2, 3}):
            assert_equivalent(pts, moved)

    def test_wraparound_pair(self):
        # the only coincident pair spans the wrap (last robot, first robot)
        pts = [(0, 0), (1, 0), (1, 1), (0, 1), (0, 0)]
        for moved in (set(), {0}, {4}, {0, 4}):
            assert_equivalent(pts, moved)

    def test_wraparound_block(self):
        # a co-location block spanning the wrap edge in both directions
        pts = [(0, 0), (0, 0), (1, 0), (1, 1), (0, 1), (0, 0)]
        for moved in (set(), {0}, {1}, {5}, {0, 5}, {1, 5}):
            assert_equivalent(pts, moved)

    def test_survivor_rules(self):
        pts = [(0, 0), (0, 0), (1, 0), (1, 1), (0, 1), (0, 2), (-1, 2),
               (-1, 1)]
        # mover beats stationary; tie -> lower id
        got, _ = run_both(pts, moved={1})
        assert got[2][0].survivor_id == 1
        got, _ = run_both(pts, moved={0})
        assert got[2][0].survivor_id == 0
        got, _ = run_both(pts, moved=set())
        assert got[2][0].survivor_id == 0

    def test_no_merge_for_colocated_non_neighbors(self):
        pts = [(0, 0), (1, 0), (1, 1), (1, 0), (2, 0), (2, -1), (1, -1),
               (0, -1)]
        assert_equivalent(pts, set())
        chain = ClosedChain(pts)
        assert chain.contract_coincident(set()) == []
        assert chain.n == 8


@st.composite
def coincident_chains(draw):
    """Closed chains with injected co-location blocks (not valid initial
    chains — exactly the states contraction must handle)."""
    from repro.chains import square_ring
    side = draw(st.integers(min_value=2, max_value=5))
    pts = list(square_ring(side))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2 ** 32 - 1)))
    # duplicate a few robots onto a chain neighbour to create zero edges
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        i = rng.randrange(len(pts))
        pts.insert(i, pts[i % len(pts)])
    moved = {i for i in range(len(pts)) if rng.random() < 0.4}
    return pts, moved


class TestPropertyEquivalence:
    @given(coincident_chains())
    def test_random_coincident_chains(self, case):
        pts, moved = case
        assert_equivalent(pts, moved)

    @given(coincident_chains())
    def test_postcondition_no_coincident_neighbors(self, case):
        pts, moved = case
        chain = ClosedChain(pts, validate=False)
        chain.contract_coincident(moved)
        pos = chain.positions
        n = len(pos)
        if n > 1:
            for i in range(n):
                assert pos[i] != pos[(i + 1) % n] or n == 1
