"""Edge-code cache consistency under mutation.

The chain maintains its edge-code array incrementally across
``apply_moves`` (only edges incident to movers are recoded) and rebuilds
it after contraction.  Drift here would silently corrupt both engines
(the policy's shape checks read the same cache), so these properties
pin the cache against a from-scratch encoding after arbitrary mutation
sequences.
"""

import random

from hypothesis import given, strategies as st

from repro.core.chain import ClosedChain, encode_edges
from repro.core.simulator import Simulator
from repro.chains import square_ring

from tests.conftest import closed_chain_positions


def assert_codes_consistent(chain):
    fresh = encode_edges(chain.positions)
    assert chain.edge_codes().tolist() == fresh.tolist()
    assert chain.edge_codes_list() == fresh.tolist()
    assert chain._invalid_edges == int((fresh == -1).sum())


def test_codes_match_reference_encoding_initial():
    chain = ClosedChain(square_ring(6))
    assert_codes_consistent(chain)


@given(closed_chain_positions(max_cells=30),
       st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_codes_consistent_under_random_moves(pts, seed):
    rng = random.Random(seed)
    chain = ClosedChain(pts)
    chain.edge_codes()                     # materialise the cache
    for _ in range(5):
        ids = chain.ids_view()
        moves = {rid: rng.choice([(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1),
                                  (1, 1), (-1, -1)])
                 for rid in rng.sample(ids, min(len(ids), rng.randrange(1, 6)))}
        chain.apply_moves(moves)
        assert_codes_consistent(chain)
        chain.contract_coincident(set(moves))
        assert_codes_consistent(chain)


def test_codes_consistent_through_full_gathering():
    sim = Simulator(square_ring(10), engine="vectorized",
                    check_invariants=True)
    while not sim.is_gathered():
        sim.step()
        assert_codes_consistent(sim.chain)


def test_positions_array_view():
    import numpy as np
    import pytest
    chain = ClosedChain(square_ring(5))
    view = chain.positions_array()
    assert view.shape == (chain.n, 2)
    assert [tuple(int(c) for c in row) for row in view] == chain.positions
    with pytest.raises(ValueError):
        view[0, 0] = 99                    # read-only contract
    chain.apply_moves({0: (0, 1)})
    assert tuple(chain.positions_array()[0]) == chain.position(0)


def test_ahead_codes_match_ahead_edges():
    from repro.core.view import ChainWindow
    from repro.core.patterns import _VEC_TO_CODE
    chain = ClosedChain(square_ring(5))
    for anchor in range(chain.n):
        w = ChainWindow(chain, anchor, 11)
        for sigma in (1, -1):
            expected = [_VEC_TO_CODE[e] for e in w.ahead_edges(sigma, 11)]
            assert w.ahead_codes(sigma, 11) == expected
            assert w.code_toward(sigma) == expected[0]


def test_codes_consistent_dense_indexed_moves():
    """The m >= 24 array tier of ``_post_move_codes`` stays exact."""
    from repro.chains import random_chain, staircase_ring

    rng = random.Random(11)
    chains = [square_ring(40), staircase_ring(8),
              random_chain(300, rng)]
    for chain in (ClosedChain(p) for p in chains):
        chain.edge_codes()
        chain.edge_codes_list()
        for _ in range(10):
            n = chain.n
            if n < 128:
                break                     # contraction shrank it too far
            m = rng.randint(24, n // 4 - 1)
            idxs = rng.sample(range(n), m)
            deltas = [(rng.choice([-1, 0, 1]), rng.choice([-1, 0, 1]))
                      for _ in range(m)]
            chain.apply_moves_indexed(idxs, deltas)
            assert_codes_consistent(chain)
            chain.contract_coincident(set())
            assert_codes_consistent(chain)


def test_codes_survive_isolated_pair_contraction():
    """The contraction fast path preserves the code cache exactly."""
    chain = ClosedChain(square_ring(12))
    chain.edge_codes()
    chain.edge_codes_list()
    # collapse two far-apart neighbour pairs onto shared cells
    i = chain.n - 1
    a, b = chain.position(2), chain.position(10)
    chain.apply_moves({chain.id_at(3): (a[0] - chain.position(3)[0],
                                        a[1] - chain.position(3)[1]),
                       chain.id_at(11): (b[0] - chain.position(11)[0],
                                         b[1] - chain.position(11)[1])})
    assert chain._invalid_edges == 2
    records = chain.contract_coincident({chain.id_at(3), chain.id_at(11)})
    assert len(records) == 2
    assert_codes_consistent(chain)
    assert chain._invalid_edges == 0
