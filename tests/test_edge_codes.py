"""Edge-code cache consistency under mutation.

The chain maintains its edge-code array incrementally across
``apply_moves`` (only edges incident to movers are recoded) and rebuilds
it after contraction.  Drift here would silently corrupt both engines
(the policy's shape checks read the same cache), so these properties
pin the cache against a from-scratch encoding after arbitrary mutation
sequences.
"""

import random

from hypothesis import given, strategies as st

from repro.core.chain import ClosedChain, encode_edges
from repro.core.simulator import Simulator
from repro.chains import square_ring

from tests.conftest import closed_chain_positions


def assert_codes_consistent(chain):
    fresh = encode_edges(chain.positions)
    assert chain.edge_codes().tolist() == fresh.tolist()
    assert chain.edge_codes_list() == fresh.tolist()
    assert chain._invalid_edges == int((fresh == -1).sum())


def test_codes_match_reference_encoding_initial():
    chain = ClosedChain(square_ring(6))
    assert_codes_consistent(chain)


@given(closed_chain_positions(max_cells=30),
       st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_codes_consistent_under_random_moves(pts, seed):
    rng = random.Random(seed)
    chain = ClosedChain(pts)
    chain.edge_codes()                     # materialise the cache
    for _ in range(5):
        ids = chain.ids_view()
        moves = {rid: rng.choice([(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1),
                                  (1, 1), (-1, -1)])
                 for rid in rng.sample(ids, min(len(ids), rng.randrange(1, 6)))}
        chain.apply_moves(moves)
        assert_codes_consistent(chain)
        chain.contract_coincident(set(moves))
        assert_codes_consistent(chain)


def test_codes_consistent_through_full_gathering():
    sim = Simulator(square_ring(10), engine="vectorized",
                    check_invariants=True)
    while not sim.is_gathered():
        sim.step()
        assert_codes_consistent(sim.chain)


def test_positions_array_view():
    import numpy as np
    import pytest
    chain = ClosedChain(square_ring(5))
    view = chain.positions_array()
    assert view.shape == (chain.n, 2)
    assert [tuple(int(c) for c in row) for row in view] == chain.positions
    with pytest.raises(ValueError):
        view[0, 0] = 99                    # read-only contract
    chain.apply_moves({0: (0, 1)})
    assert tuple(chain.positions_array()[0]) == chain.position(0)


def test_ahead_codes_match_ahead_edges():
    from repro.core.view import ChainWindow
    from repro.core.patterns import _VEC_TO_CODE
    chain = ClosedChain(square_ring(5))
    for anchor in range(chain.n):
        w = ChainWindow(chain, anchor, 11)
        for sigma in (1, -1):
            expected = [_VEC_TO_CODE[e] for e in w.ahead_edges(sigma, 11)]
            assert w.ahead_codes(sigma, 11) == expected
            assert w.code_toward(sigma) == expected[0]
