"""The FSYNC round engine: pipeline ordering and bookkeeping."""

import pytest

from repro.grid.lattice import EAST, WEST
from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS, Parameters
from repro.core.engine import Engine
from repro.core.runs import RunMode, StopReason
from repro.chains import rectangle_ring, square_ring

P = DEFAULT_PARAMETERS


class TestWaves:
    def test_starts_only_on_wave_rounds(self):
        engine = Engine(ClosedChain(square_ring(16)), P)
        started = []
        for _ in range(2 * P.start_interval + 1):
            rep = engine.step()
            if rep.runs_started:
                started.append(rep.round_index)
        assert started and all(r % P.start_interval == 0 for r in started)

    def test_wave_creates_two_runs_per_corner(self):
        engine = Engine(ClosedChain(square_ring(16)), P)
        rep = engine.step()
        assert rep.runs_started == 8
        per_robot = {}
        for run in engine.registry.active_runs():
            per_robot[run.robot_id] = per_robot.get(run.robot_id, 0) + 1
        assert set(per_robot.values()) == {2}

    def test_new_runs_do_not_act_in_creation_round(self):
        engine = Engine(ClosedChain(square_ring(16)), P)
        rep = engine.step()
        assert rep.hops == 0                   # corner cuts come next round
        rep = engine.step()
        assert rep.hops == 4                   # one cut per corner


class TestMergeRunInteraction:
    def test_merge_participants_do_not_start_runs(self):
        # a chain where corners are also merge participants: small ring
        engine = Engine(ClosedChain(square_ring(6)), P)
        rep = engine.step()
        assert rep.merge_patterns > 0
        assert rep.runs_started == 0

    def test_runner_absorbed_by_merge(self):
        ring = square_ring(24)
        bump = [(11, 0), (11, 1), (12, 1), (13, 1), (13, 0)]
        i, j = ring.index(bump[0]), ring.index(bump[-1])
        pts = ring[:i + 1] + bump[1:-1] + ring[j:]
        chain = ClosedChain(pts)
        engine = Engine(chain, P)
        run = engine.registry.start(chain.id_at(pts.index((12, 1))), 1, EAST, 0)
        rep = engine.step()
        assert run.stop_reason is StopReason.MERGE_PARTICIPATION
        assert rep.runs_terminated[StopReason.MERGE_PARTICIPATION] == 1


class TestRunMovement:
    def test_run_advances_every_round(self):
        chain = ClosedChain(rectangle_ring(40, 13))
        engine = Engine(chain, P)
        run = engine.registry.start(chain.id_at(5), 1, EAST, 0)
        carriers = [run.robot_id]
        for _ in range(5):
            engine.step()
            if run.active:
                carriers.append(run.robot_id)
        assert len(set(carriers)) == len(carriers)   # a new robot every round

    def test_duplicate_direction_cleanup(self):
        chain = ClosedChain(rectangle_ring(40, 13))
        engine = Engine(chain, P)
        a = engine.registry.start(chain.id_at(5), 1, EAST, 0)
        b = engine.registry.start(chain.id_at(6), 1, EAST, 0)
        # force b onto a's next robot so both land together after moving
        engine.registry.move(b, chain.id_at(5))
        engine.step()
        reasons = {r.stop_reason for r in (a, b)}
        assert StopReason.DUPLICATE_DIRECTION in reasons or \
            StopReason.SEQUENT_RUN_AHEAD in reasons


class TestReports:
    def test_report_counts(self):
        engine = Engine(ClosedChain(square_ring(8)), P)
        rep = engine.step()
        assert rep.n_before == 28
        assert rep.n_after == rep.n_before - rep.robots_removed
        assert rep.merge_patterns >= 4

    def test_trace_recording(self):
        from repro.core.events import Trace
        trace = Trace()
        engine = Engine(ClosedChain(square_ring(8)), P, trace=trace)
        engine.step()
        engine.step()
        assert trace.rounds == 2
        assert len(trace.snapshots) == 2
        assert trace.snapshots[0].round_index == 0

    def test_round_index_advances(self):
        engine = Engine(ClosedChain(square_ring(8)), P)
        assert engine.round_index == 0
        engine.step()
        assert engine.round_index == 1


class TestHopConflicts:
    def test_conflicting_runner_hops_cancelled(self):
        chain = ClosedChain(rectangle_ring(40, 13))
        engine = Engine(chain, P, check_invariants=True)
        # two runs on the same corner robot with perpendicular axes would
        # request different (a)-hops; the engine must cancel both
        a = engine.registry.start(chain.id_at(0), 1, EAST, 0)
        b = engine.registry.start(chain.id_at(0), -1, WEST, 0)
        rep = engine.step()     # either both hop identically or none
        assert rep.runner_hop_conflicts in (0, 1)
        chain.validate()
