"""Reference vs vectorised engine: behavioural equivalence.

The NumPy merge detector must produce exactly the same patterns as the
reference scanner, and full simulations must produce identical traces.
"""

import random

import pytest
from hypothesis import given, settings

from repro.core.patterns import find_merge_patterns
from repro.core.engine_vectorized import encode_edges, find_merge_patterns_np
from repro.core.simulator import Simulator
from repro.chains import (
    comb, crenellation, needle, random_chain, spiral, square_ring,
    stairway_octagon,
)

from tests.conftest import closed_chain_positions

K_MAX_VALUES = [1, 2, 3, 10]


def _normalize(patterns):
    return sorted((p.first_black, p.k, p.direction) for p in patterns)


class TestDetectorEquivalence:
    @pytest.mark.parametrize("k_max", K_MAX_VALUES)
    @pytest.mark.parametrize("pts", [
        square_ring(8), square_ring(16), needle(12), comb(3),
        crenellation(4), stairway_octagon(8, 2), spiral(1),
    ], ids=["sq8", "sq16", "needle", "comb", "cren", "oct", "spiral"])
    def test_families(self, pts, k_max):
        assert _normalize(find_merge_patterns(pts, k_max)) == \
            _normalize(find_merge_patterns_np(pts, k_max))

    @given(closed_chain_positions(max_cells=35))
    def test_random_chains(self, pts):
        for k_max in (2, 10):
            assert _normalize(find_merge_patterns(pts, k_max)) == \
                _normalize(find_merge_patterns_np(pts, k_max))

    def test_tiny_chains(self):
        for pts in ([(0, 0), (1, 0)], [(0, 0), (1, 0), (1, 1), (0, 1)]):
            assert _normalize(find_merge_patterns(pts, 10)) == \
                _normalize(find_merge_patterns_np(pts, 10))


class TestEncodeEdges:
    def test_codes(self):
        codes = encode_edges([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert list(codes) == [0, 1, 2, 3]

    def test_zero_edge_is_invalid(self):
        codes = encode_edges([(0, 0), (0, 0), (1, 0), (1, 0)])
        assert codes[0] == -1 and codes[2] == -1


class TestFullTraceEquivalence:
    @pytest.mark.parametrize("pts", [
        square_ring(16), stairway_octagon(12, 2), comb(4), spiral(1),
    ], ids=["square", "octagon", "comb", "spiral"])
    def test_identical_gatherings(self, pts):
        a = Simulator(list(pts), engine="reference", check_invariants=True)
        b = Simulator(list(pts), engine="vectorized", check_invariants=True)
        for _ in range(500):
            if a.is_gathered() and b.is_gathered():
                break
            ra = a.step()
            rb = b.step()
            assert a.chain.positions == b.chain.positions
            assert ra.robots_removed == rb.robots_removed
        assert a.is_gathered() and b.is_gathered()

    def test_random_chain_equivalence(self):
        rng = random.Random(123)
        for _ in range(4):
            pts = random_chain(60, rng)
            a = Simulator(list(pts), engine="reference")
            b = Simulator(list(pts), engine="vectorized")
            ra = a.run()
            rb = b.run()
            assert ra.rounds == rb.rounds
            assert ra.final_positions == rb.final_positions
