"""Round reports, snapshots and traces."""

from repro.core.events import RoundReport, RunSnapshot, Snapshot, Trace
from repro.core.runs import StopReason
from repro.core.simulator import Simulator
from repro.chains import square_ring


class TestRoundReport:
    def test_robots_removed(self):
        rep = RoundReport(round_index=3, n_before=10, n_after=7)
        assert rep.robots_removed == 3

    def test_default_collections_independent(self):
        a = RoundReport(round_index=0, n_before=4, n_after=4)
        b = RoundReport(round_index=1, n_before=4, n_after=4)
        a.merges.append("x")
        a.runs_terminated[StopReason.ENDPOINT_VISIBLE] = 1
        assert b.merges == [] and b.runs_terminated == {}


class TestTrace:
    def test_snapshot_recording_can_be_disabled(self):
        trace = Trace(keep_snapshots=False)
        trace.record_snapshot(Snapshot(0, ((0, 0),), (0,)))
        assert trace.snapshots == []

    def test_merge_rounds_and_lengths(self):
        sim = Simulator(square_ring(8), record_trace=True)
        result = sim.run()
        trace = result.trace
        assert trace.rounds == result.rounds
        merge_rounds = trace.merge_rounds()
        assert merge_rounds
        assert all(0 <= r < result.rounds for r in merge_rounds)
        lengths = trace.chain_lengths()
        assert lengths == sorted(lengths, reverse=True)

    def test_snapshots_carry_runs(self):
        sim = Simulator(square_ring(16), record_trace=True)
        sim.step()
        sim.step()
        snap = sim.trace.snapshots[-1]
        assert isinstance(snap, Snapshot)
        assert all(isinstance(r, RunSnapshot) for r in snap.runs)
        assert len(snap.runs) == 8            # the first wave
