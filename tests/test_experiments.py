"""The reproduction experiments: every scenario and condition passes.

These tests pin the paper-artifact reproductions (DESIGN.md §4) into the
regular test suite — a regression in the algorithm that breaks a figure
semantics shows up here, not only in the slow experiment report.
"""

import pytest

from repro.experiments.exp_figures import scenario_functions
from repro.experiments.exp_table1 import condition_functions
from repro.experiments.harness import (
    ExperimentResult,
    format_markdown_report,
    registered_ids,
    run_experiments,
)


@pytest.mark.parametrize(
    "fid,title,fn",
    scenario_functions(),
    ids=[fid for fid, _, _ in scenario_functions()])
def test_figure_scenarios(fid, title, fn):
    desc, expect, ok = fn()
    assert ok, f"{fid} ({title}): expected {expect} on {desc}"


@pytest.mark.parametrize(
    "name,fn",
    condition_functions(),
    ids=[name.replace(" ", "-") for name, _ in condition_functions()])
def test_table1_conditions(name, fn):
    assert fn(), f"Table 1 condition {name} did not fire as specified"


class TestHarness:
    def test_registry_populated(self):
        results = run_experiments(ids=["EXP-P1"], quick=True)
        assert len(results) == 1
        assert results[0].experiment_id == "EXP-P1"
        assert "EXP-T1" in registered_ids()
        assert "EXP-TBL1" in registered_ids()

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(ids=["EXP-NOPE"])

    def test_markdown_report_structure(self):
        res = ExperimentResult(
            experiment_id="X", title="t", paper_claim="c",
            measured="m", passed=True, table="data",
            details=["note"])
        md = format_markdown_report([res], header="# H")
        assert "# H" in md
        assert "| X | t | PASS |" in md
        assert "## X — t" in md
        assert "```\ndata\n```" in md


class TestQuickExperiments:
    """Fast experiments run end-to-end inside the suite."""

    @pytest.mark.parametrize("eid", ["EXP-L1", "EXP-L3", "EXP-B2"])
    def test_pass(self, eid):
        (result,) = run_experiments(ids=[eid], quick=True)
        assert result.passed, result.measured
