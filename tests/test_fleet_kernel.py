"""Fleet kernel ≡ per-chain kernel engine, chain for chain.

The fleet tier (DESIGN.md §2.10) advances many chains per round in
shared arrays; these tests pin **bit-identical** per-chain results
against running each chain through ``Simulator(engine="kernel")``:
gathered/stalled state, round counts, final positions and full
round-report content (hops, merge records, run starts/terminations
with exact stop reasons, conflict counters) — on generator families,
random blobs, perturbed shapes, hypothesis-generated fleets, fleets
whose members gather in different rounds, and both batch backends.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch import BatchSimulator, gather_batch
from repro.core.engine_fleet import FleetKernel, gather_fleet
from repro.core.simulator import Simulator
from repro.chains import (
    comb, crenellation, perturb, random_chain, serpentine_ring, spiral,
    square_ring, staircase_ring, stairway_octagon,
)

from tests.conftest import closed_chain_positions, merge_dense_chain_positions


def _report_key(report):
    return (report.n_before, report.n_after, report.hops,
            report.merge_patterns, report.merges, report.runs_started,
            report.runs_terminated, report.active_runs,
            report.merge_conflicts, report.runner_hop_conflicts)


def assert_fleet_equals_singles(fleet_pts, max_rounds=None,
                                check_invariants=True):
    """Gather the fleet in shared arrays and each chain alone; compare."""
    singles = [Simulator(list(p), engine="kernel",
                         check_invariants=check_invariants).run(
                             max_rounds=max_rounds)
               for p in fleet_pts]
    results = gather_fleet([list(p) for p in fleet_pts],
                           check_invariants=check_invariants,
                           keep_reports=True, max_rounds=max_rounds)
    assert len(results) == len(singles)
    for i, (s, f) in enumerate(zip(singles, results)):
        assert f.gathered == s.gathered, f"chain {i}"
        assert f.stalled == s.stalled, f"chain {i}"
        assert f.rounds == s.rounds, f"chain {i}"
        assert f.initial_n == s.initial_n, f"chain {i}"
        assert f.final_n == s.final_n, f"chain {i}"
        assert f.final_positions == s.final_positions, f"chain {i}"
        assert len(f.reports) == len(s.reports), f"chain {i}"
        for r, (ra, rb) in enumerate(zip(s.reports, f.reports)):
            assert _report_key(ra) == _report_key(rb), \
                f"chain {i} round {r}"
    return results


class TestFamilies:
    def test_mixed_family_fleet(self):
        # members gather in very different rounds, so the fleet runs
        # long past the first retirements
        assert_fleet_equals_singles([
            square_ring(8), square_ring(16), square_ring(40),
            stairway_octagon(12, 2), comb(4), spiral(1),
            staircase_ring(4), serpentine_ring(3, 10, 4),
        ])

    def test_homogeneous_fleet(self):
        # many identical chains merge in the same rounds — the
        # worst case for the shared contraction/planning stages
        assert_fleet_equals_singles([square_ring(16)] * 12)

    def test_perturbed_and_random(self):
        rng = random.Random(404)
        pts = [perturb(list(square_ring(14)), 10),
               perturb(list(stairway_octagon(8, 2)), 10)]
        pts += [random_chain(50 + 30 * k, rng) for k in range(4)]
        assert_fleet_equals_singles(pts)

    def test_merge_dense_fleet(self):
        # every tooth of every chain spike-merges in the same rounds:
        # the contraction stage folds long runs of simultaneous merge
        # events across many chains (the vectorised survivor pass)
        assert_fleet_equals_singles(
            [crenellation(8, 1, 4)] * 6
            + [crenellation(4, 1, 8), crenellation(12, 1, 3), comb(3)])

    def test_merge_dense_mixed_with_rings(self):
        assert_fleet_equals_singles(
            [crenellation(6, 1, 5), square_ring(16),
             crenellation(3, 1, 9), square_ring(8)])

    def test_single_chain_fleet(self):
        assert_fleet_equals_singles([square_ring(12)])

    def test_single_chain_fleet_merge_dense(self):
        # a fleet of one takes the single-segment tiers (per-chain
        # detector, scalar decisions, chain movement scatter)
        assert_fleet_equals_singles([crenellation(10, 1, 6)])

    def test_empty_fleet(self):
        assert gather_fleet([]) == []

    def test_max_rounds_budget_stalls(self):
        # chains retire by budget, not gathering; reports still match
        assert_fleet_equals_singles([square_ring(20), square_ring(8)],
                                    max_rounds=5)


class TestHypothesisFleets:
    @settings(max_examples=10)
    @given(st.lists(closed_chain_positions(max_cells=25),
                    min_size=2, max_size=5))
    def test_property_fleets(self, fleet_pts):
        assert_fleet_equals_singles(fleet_pts, check_invariants=False)

    @settings(max_examples=10)
    @given(st.lists(merge_dense_chain_positions(max_teeth=6),
                    min_size=2, max_size=4))
    def test_merge_dense_fleets(self, fleet_pts):
        assert_fleet_equals_singles(fleet_pts, check_invariants=False)

    @settings(max_examples=8)
    @given(st.lists(st.one_of(closed_chain_positions(max_cells=20),
                              merge_dense_chain_positions(max_teeth=5)),
                    min_size=2, max_size=4))
    def test_mixed_merge_dense_fleets(self, fleet_pts):
        assert_fleet_equals_singles(fleet_pts, check_invariants=False)


class TestBatchBackend:
    def test_fleet_backend_matches_process(self):
        rng = random.Random(7)
        chains = [random_chain(48, rng) for _ in range(3)]
        a = gather_batch(chains, backend="fleet")
        b = gather_batch(chains, backend="process")
        assert [r.rounds for r in a] == [r.rounds for r in b]
        assert [r.final_positions for r in a] == \
            [r.final_positions for r in b]
        assert [[_report_key(rep) for rep in r.reports] for r in a] == \
            [[_report_key(rep) for rep in r.reports] for r in b]

    def test_auto_backend_selection(self):
        assert BatchSimulator([square_ring(8)]).backend == "fleet"
        assert BatchSimulator([square_ring(8)],
                              engine="reference").backend == "process"
        assert BatchSimulator([square_ring(8)],
                              backend="process").backend == "process"

    def test_fleet_backend_requires_kernel_engine(self):
        with pytest.raises(ValueError):
            BatchSimulator([square_ring(8)], engine="reference",
                           backend="fleet")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            BatchSimulator([square_ring(8)], backend="warp")

    def test_workers_shard_the_fleet(self):
        chains = [square_ring(s) for s in (8, 10, 12, 14, 16)]
        serial = gather_batch(chains, backend="fleet", workers=1)
        sharded = gather_batch(chains, backend="fleet", workers=2)
        assert sharded.workers == 2
        assert [r.rounds for r in serial] == [r.rounds for r in sharded]
        assert [r.final_positions for r in serial] == \
            [r.final_positions for r in sharded]

    def test_keep_reports_false_strips(self):
        batch = gather_batch([square_ring(8)], backend="fleet",
                             keep_reports=False)
        assert batch[0].reports == []
        assert batch[0].gathered

    def test_progress_callback(self):
        calls = []
        batch = gather_batch([square_ring(s) for s in (8, 10, 12)],
                             backend="fleet", keep_reports=False,
                             progress=lambda done, total:
                             calls.append((done, total)))
        assert batch.all_gathered
        assert calls and calls[-1] == (3, 3)
        assert all(t == 3 for _, t in calls)
        assert [d for d, _ in calls] == sorted(d for d, _ in calls)


class TestFleetKernelDirect:
    def test_validation_enforced(self):
        from repro.errors import ChainError
        with pytest.raises(ChainError):
            FleetKernel([[(0, 0), (1, 0), (1, 1)]])   # odd length

    def test_results_in_input_order(self):
        sizes = (16, 8, 12)
        results = gather_fleet([square_ring(s) for s in sizes])
        assert [r.initial_n for r in results] == [4 * (s - 1) for s in sizes]
