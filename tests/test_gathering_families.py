"""Integration: every chain family gathers with invariant checking on.

This is the end-to-end verification of the main theorem across the
whole generator zoo, with the engine's internal invariants armed so any
model violation fails the test rather than silently corrupting results.
"""

import pytest

from repro.core.simulator import gather
from repro.core.config import Parameters
from repro.chains import (
    comb,
    crenellation,
    l_shape,
    needle,
    plus_shape,
    rectangle_ring,
    serpentine_ring,
    spiral,
    square_ring,
    staircase_ring,
    stairway_octagon,
    t_shape,
    zigzag_band,
)

CASES = [
    pytest.param(needle(6), id="needle-6"),
    pytest.param(needle(20), id="needle-20"),
    pytest.param(needle(60), id="needle-60"),
    pytest.param(rectangle_ring(6, 4), id="rect-6x4"),
    pytest.param(rectangle_ring(30, 13), id="rect-30x13"),
    pytest.param(rectangle_ring(13, 30), id="rect-13x30"),
    pytest.param(square_ring(4), id="square-4"),
    pytest.param(square_ring(8), id="square-8"),
    pytest.param(square_ring(12), id="square-12"),
    pytest.param(square_ring(13), id="square-13"),
    pytest.param(square_ring(14), id="square-14"),
    pytest.param(square_ring(16), id="square-16"),
    pytest.param(square_ring(17), id="square-17"),
    pytest.param(square_ring(20), id="square-20"),
    pytest.param(square_ring(25), id="square-25"),
    pytest.param(square_ring(32), id="square-32"),
    pytest.param(comb(2), id="comb-2"),
    pytest.param(comb(5), id="comb-5"),
    pytest.param(comb(4, tooth_height=10, gap=3), id="comb-tall"),
    pytest.param(crenellation(4), id="crenellation-4"),
    pytest.param(crenellation(8, tooth_width=2), id="crenellation-8x2"),
    pytest.param(plus_shape(8, 3), id="plus"),
    pytest.param(l_shape(20, 14, 4), id="l-shape"),
    pytest.param(t_shape(21, 15, 5), id="t-shape"),
    pytest.param(zigzag_band(4, 3, 5), id="zigzag"),
    pytest.param(spiral(1), id="spiral-1"),
    pytest.param(spiral(2), id="spiral-2"),
    pytest.param(stairway_octagon(4, 1), id="octagon-4"),
    pytest.param(stairway_octagon(12, 2), id="octagon-12"),
    pytest.param(stairway_octagon(16, 3), id="octagon-16"),
    pytest.param(staircase_ring(2), id="staircase-2"),
    pytest.param(serpentine_ring(2, 8, 4), id="serpentine"),
]


@pytest.mark.parametrize("pts", CASES)
def test_family_gathers_with_invariants(pts):
    result = gather(list(pts), check_invariants=True)
    assert result.gathered, f"stalled at n={result.final_n} after {result.rounds}"
    assert result.rounds <= result.params.round_budget(result.initial_n)


def test_paper_literal_guards_off_stalls_in_short_line_regime():
    """The documented deviation (DESIGN.md §2.7): under the literal
    Table-1 reading, every fresh run on a quasi line shorter than the
    viewing range sees its own wave ahead and self-terminates, so
    symmetric rings deadlock once they shrink to that scale.  The pair
    guards fix exactly this; with them off, the stall is reproducible."""
    params = Parameters(endpoint_guard=False, sequent_guard=False)
    literal = gather(square_ring(16), params=params, max_rounds=600)
    assert literal.stalled
    assert literal.final_n > 4                 # stuck mid-gathering
    guarded = gather(square_ring(16), max_rounds=600)
    assert guarded.gathered


def test_rounds_scale_linearly_on_needles():
    rounds = [gather(needle(k)).rounds for k in (40, 80, 160)]
    assert rounds[1] <= 2.6 * rounds[0]
    assert rounds[2] <= 2.6 * rounds[1]
