"""Property-based end-to-end tests (hypothesis).

The model's global invariants, checked over random polyomino-outline
chains: gathering always succeeds within the linear budget, the chain
never breaks, the robot count never grows, and only chain neighbours
ever merge.
"""

from hypothesis import given, settings

from repro.grid.lattice import manhattan
from repro.core.chain import ClosedChain
from repro.core.simulator import Simulator, gather

from tests.conftest import closed_chain_positions


@given(closed_chain_positions(max_cells=30))
@settings(max_examples=15)
def test_random_chains_gather_within_budget(pts):
    result = gather(list(pts), check_invariants=True)
    assert result.gathered
    assert result.rounds <= result.params.round_budget(result.initial_n)


@given(closed_chain_positions(max_cells=25))
@settings(max_examples=10)
def test_connectivity_and_monotonicity_every_round(pts):
    sim = Simulator(list(pts), check_invariants=False)
    prev_n = sim.chain.n
    budget = sim.params.round_budget(prev_n)
    while not sim.is_gathered() and sim.round_index < budget:
        sim.step()
        positions = sim.chain.positions
        n = len(positions)
        assert n <= prev_n
        prev_n = n
        for i in range(n):
            assert manhattan(positions[i], positions[(i + 1) % n]) <= 1
    assert sim.is_gathered()


@given(closed_chain_positions(max_cells=25))
@settings(max_examples=10)
def test_merges_only_remove_chain_neighbors(pts):
    sim = Simulator(list(pts), check_invariants=False, record_trace=True)
    result = sim.run()
    assert result.gathered
    for report in result.reports:
        for record in report.merges:
            # survivor and removed robot ended on the same point
            assert record.position is not None


@given(closed_chain_positions(max_cells=20))
@settings(max_examples=10)
def test_final_configuration_fits_2x2(pts):
    result = gather(list(pts))
    box_w = max(p[0] for p in result.final_positions) - \
        min(p[0] for p in result.final_positions)
    box_h = max(p[1] for p in result.final_positions) - \
        min(p[1] for p in result.final_positions)
    assert box_w <= 1 and box_h <= 1


@given(closed_chain_positions(max_cells=20))
@settings(max_examples=10)
def test_determinism(pts):
    a = gather(list(pts))
    b = gather(list(pts))
    assert a.rounds == b.rounds
    assert a.final_positions == b.final_positions
