"""The invariant checkers raise exactly on violations."""

import pytest

from repro.errors import InvariantViolation
from repro.grid.lattice import EAST
from repro.core.chain import ClosedChain
from repro.core.invariants import (
    check_connectivity,
    check_hop_lengths,
    check_monotone_count,
    check_run_speed,
    check_runs_alive,
)
from repro.core.runs import RunRegistry
from repro.chains import square_ring


class TestConnectivity:
    def test_ok(self):
        check_connectivity(ClosedChain(square_ring(5)))

    def test_broken(self):
        chain = ClosedChain(square_ring(5))
        chain._arr[2] = (50, 50)               # corrupt deliberately
        chain._invalidate()
        with pytest.raises(InvariantViolation):
            check_connectivity(chain)


class TestHopLengths:
    def test_ok(self):
        check_hop_lengths({1: (0, 0)}, {1: (1, 1)})

    def test_too_far(self):
        with pytest.raises(InvariantViolation):
            check_hop_lengths({1: (0, 0)}, {1: (2, 0)})

    def test_new_robot_ignored(self):
        check_hop_lengths({}, {1: (9, 9)})


class TestMonotoneCount:
    def test_ok(self):
        check_monotone_count(5, 5)
        check_monotone_count(5, 3)

    def test_increase_rejected(self):
        with pytest.raises(InvariantViolation):
            check_monotone_count(3, 5)


class TestRunsAlive:
    def test_ok(self):
        chain = ClosedChain(square_ring(5))
        reg = RunRegistry()
        reg.start(chain.id_at(0), 1, EAST, 0)
        check_runs_alive(chain, reg)

    def test_dead_carrier(self):
        chain = ClosedChain(square_ring(5))
        reg = RunRegistry()
        reg.start(999, 1, EAST, 0)
        with pytest.raises(InvariantViolation):
            check_runs_alive(chain, reg)


class TestRunSpeed:
    def test_ok(self):
        chain = ClosedChain(square_ring(5))
        moved = [(chain.id_at(0), chain.id_at(1), 1),
                 (chain.id_at(3), chain.id_at(2), -1)]
        check_run_speed(chain, moved)

    def test_mismatch(self):
        chain = ClosedChain(square_ring(5))
        with pytest.raises(InvariantViolation):
            check_run_speed(chain, [(chain.id_at(0), chain.id_at(2), 1)])
