"""Serialization round-trips."""

import json

import pytest

from repro.errors import ChainError
from repro.core.chain import ClosedChain
from repro.core.simulator import Simulator, gather
from repro.chains import square_ring, stairway_octagon
from repro.io import (
    chain_from_json,
    chain_to_json,
    load_chain,
    load_trace,
    result_to_json,
    save_chain,
    save_trace,
    trace_from_json,
    trace_to_json,
)


class TestChainSerialization:
    def test_round_trip(self):
        chain = ClosedChain(square_ring(7))
        restored = chain_from_json(chain_to_json(chain))
        assert restored.positions == chain.positions

    def test_file_round_trip(self, tmp_path):
        chain = ClosedChain(stairway_octagon(5, 2))
        path = save_chain(str(tmp_path / "c.json"), chain)
        assert load_chain(path).positions == chain.positions

    def test_wrong_format_rejected(self):
        with pytest.raises(ChainError):
            chain_from_json(json.dumps({"format": "other", "positions": []}))

    def test_invalid_positions_rejected(self):
        doc = json.dumps({"format": "repro.chain", "version": 1,
                          "positions": [[0, 0], [5, 5]]})
        with pytest.raises(ChainError):
            chain_from_json(doc)


class TestResultSerialization:
    def test_result_fields(self):
        result = gather(square_ring(8))
        doc = json.loads(result_to_json(result))
        assert doc["gathered"] is True
        assert doc["initial_n"] == 28
        assert doc["params"]["viewing_path_length"] == 11
        assert doc["params"]["start_interval"] == 13


class TestTraceSerialization:
    def test_round_trip(self):
        sim = Simulator(square_ring(16), record_trace=True)
        for _ in range(15):
            sim.step()
        restored = trace_from_json(trace_to_json(sim.trace))
        assert len(restored.snapshots) == len(sim.trace.snapshots)
        for a, b in zip(restored.snapshots, sim.trace.snapshots):
            assert a.positions == b.positions
            assert a.ids == b.ids
            assert len(a.runs) == len(b.runs)
            for ra, rb in zip(a.runs, b.runs):
                assert (ra.run_id, ra.robot_id, ra.direction, ra.mode) == \
                    (rb.run_id, rb.robot_id, rb.direction, rb.mode)

    def test_file_round_trip(self, tmp_path):
        sim = Simulator(square_ring(8), record_trace=True)
        sim.run()
        path = save_trace(str(tmp_path / "t.json"), sim.trace)
        restored = load_trace(path)
        assert len(restored.snapshots) == len(sim.trace.snapshots)

    def test_wrong_format_rejected(self):
        with pytest.raises(ChainError):
            trace_from_json(json.dumps({"format": "nope", "snapshots": []}))
