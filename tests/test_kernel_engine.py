"""Kernel engine wiring: the fleet-of-one behind ``engine="kernel"``.

Behavioural equivalence lives in the cross-engine conformance suite
(``tests/test_conformance.py``); this module pins the plumbing —
simulator/batch acceptance, the fleet-of-one substrate, trace capture
and the SSYNC scheduler-hook fallback.
"""

import pytest

from repro.core.engine import Engine
from repro.core.engine_kernel import KernelEngine
from repro.core.simulator import Simulator
from repro.core.config import DEFAULT_PARAMETERS
from repro.chains import square_ring


class TestKernelWiring:
    def test_simulator_accepts_kernel(self):
        result = Simulator(square_ring(12), engine="kernel").run()
        assert result.gathered

    def test_batch_accepts_kernel(self):
        from repro.core.batch import gather_batch
        batch = gather_batch([square_ring(8), square_ring(10)],
                             engine="kernel", keep_reports=False)
        assert batch.all_gathered

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Simulator(square_ring(8), engine="warp")

    def test_kernel_trace_matches_reference(self):
        pts = square_ring(12)
        a = Simulator(list(pts), engine="reference", record_trace=True).run()
        b = Simulator(list(pts), engine="kernel", record_trace=True).run()
        assert len(a.trace.snapshots) == len(b.trace.snapshots)
        for sa, sb in zip(a.trace.snapshots, b.trace.snapshots):
            assert sa.positions == sb.positions
            assert sa.ids == sb.ids
            assert [(r.robot_id, r.direction, r.mode) for r in sa.runs] == \
                [(r.robot_id, r.direction, r.mode) for r in sb.runs]


class TestFleetOfOneSubstrate:
    def test_kernel_runs_on_single_segment_arena(self):
        from repro.core.chain import ClosedChain
        engine = KernelEngine(ClosedChain(square_ring(10)),
                              DEFAULT_PARAMETERS)
        assert engine._fleet is not None
        assert len(engine._fleet.arena.chains) == 1
        assert engine.registry is engine._fleet.registry

    def test_numpy_min_runs_forwards_to_fleet(self):
        from repro.core.chain import ClosedChain
        engine = KernelEngine(ClosedChain(square_ring(10)),
                              DEFAULT_PARAMETERS, numpy_min_runs=7)
        assert engine.numpy_min_runs == 7
        engine.numpy_min_runs = 0
        assert engine._fleet.numpy_min_runs == 0

    def test_ssync_hook_subclass_falls_back(self):
        """A subclass overriding _select_moves routes through the
        reference pipeline and still sees every move offered."""
        seen = []

        class Hooked(KernelEngine):
            def _select_moves(self, moves):
                seen.append(dict(moves))
                return moves

        from repro.core.chain import ClosedChain
        pts = square_ring(12)
        engine = Hooked(ClosedChain(list(pts)), DEFAULT_PARAMETERS,
                        check_invariants=False)
        assert engine._fleet is None       # legacy path selected
        reference = Simulator(list(pts), engine="reference",
                              check_invariants=False)
        for _ in range(30):
            if engine.chain.is_gathered():
                break
            engine.step()
            reference.step()
            assert engine.chain.positions == reference.chain.positions
        assert seen and any(m for m in seen)

    def test_plain_kernel_has_no_legacy_hook(self):
        from repro.core.chain import ClosedChain
        engine = KernelEngine(ClosedChain(square_ring(8)),
                              DEFAULT_PARAMETERS)
        assert type(engine)._select_moves is Engine._select_moves
