"""Kernel engine ≡ reference engine, decision for decision.

The ``"kernel"`` engine executes the whole round pipeline on arrays
(DESIGN.md §2.9); these tests pin bit-identical behaviour against the
reference engine: positions, ids, round reports (hops, merges, run
starts/terminations with exact stop reasons, conflict counters) and
the live run states themselves, every round, on generator families,
random blobs, perturbed shapes and the mid-gathering states the
lockstep traversal passes through.  Both decision paths (adaptive
scalar and forced NumPy) are exercised.
"""

import random

import pytest
from hypothesis import given, settings

from repro.core.runs import RunRegistry
from repro.core.simulator import ENGINES, Simulator
from repro.chains import (
    comb, perturb, random_chain, serpentine_ring, spiral, square_ring,
    staircase_ring, stairway_octagon,
)

from tests.conftest import closed_chain_positions


def _registry_state(registry: RunRegistry):
    return sorted(
        (r.robot_id, r.direction, r.mode.value, r.target_id,
         r.travel_steps_left, r.axis)
        for r in registry.active_runs())


def _report_key(report):
    return (report.n_before, report.n_after, report.hops,
            report.merge_patterns, report.merges, report.runs_started,
            report.runs_terminated, report.active_runs,
            report.merge_conflicts, report.runner_hop_conflicts)


def assert_lockstep_equal(pts, max_rounds=4000, numpy_min_runs=None,
                          check_invariants=True):
    """Run reference and kernel side by side and compare every round."""
    a = Simulator(list(pts), engine="reference",
                  check_invariants=check_invariants)
    b = Simulator(list(pts), engine="kernel",
                  check_invariants=check_invariants)
    if numpy_min_runs is not None:
        b.engine.numpy_min_runs = numpy_min_runs
    for i in range(max_rounds):
        if a.is_gathered() and b.is_gathered():
            break
        ra = a.step()
        rb = b.step()
        assert a.chain.positions == b.chain.positions, f"round {i}"
        assert a.chain.ids == b.chain.ids, f"round {i}"
        assert _report_key(ra) == _report_key(rb), f"round {i}"
        assert _registry_state(a.engine.registry) == \
            _registry_state(b.engine.registry), f"round {i}"
    assert a.is_gathered() and b.is_gathered()
    return a.round_index


class TestFamilies:
    @pytest.mark.parametrize("pts", [
        square_ring(16), square_ring(40), stairway_octagon(12, 2), comb(4),
        spiral(1), staircase_ring(4), serpentine_ring(3, 10, 4),
    ], ids=["sq16", "sq40", "octagon", "comb", "spiral", "staircase",
            "serpentine"])
    def test_lockstep(self, pts):
        assert_lockstep_equal(pts)

    def test_forced_numpy_decisions(self):
        # numpy_min_runs=0 forces the bulk decision path on every round
        assert_lockstep_equal(square_ring(24), numpy_min_runs=0)
        assert_lockstep_equal(stairway_octagon(10, 2), numpy_min_runs=0)

    def test_full_run_equivalence_all_engines(self):
        pts = square_ring(20)
        results = [Simulator(list(pts), engine=e,
                             check_invariants=False).run()
                   for e in ENGINES]
        assert len({r.rounds for r in results}) == 1
        assert len({tuple(r.final_positions) for r in results}) == 1


class TestRandomChains:
    def test_random_blobs(self):
        rng = random.Random(1234)
        for k in range(6):
            pts = random_chain(50 + 30 * k, rng)
            assert_lockstep_equal(pts)

    def test_perturbed_shapes(self):
        rng = random.Random(99)
        for base in (square_ring(14), stairway_octagon(8, 2)):
            pts = perturb(list(base), 10)
            assert_lockstep_equal(pts)

    def test_random_blobs_numpy_path(self):
        rng = random.Random(77)
        for k in range(3):
            pts = random_chain(60 + 40 * k, rng)
            assert_lockstep_equal(pts, numpy_min_runs=0)

    @settings(max_examples=15)
    @given(closed_chain_positions(max_cells=30))
    def test_property_equivalence(self, pts):
        assert_lockstep_equal(pts, check_invariants=False)

    @settings(max_examples=10)
    @given(closed_chain_positions(max_cells=20))
    def test_property_equivalence_numpy(self, pts):
        assert_lockstep_equal(pts, check_invariants=False, numpy_min_runs=0)


class TestKernelWiring:
    def test_simulator_accepts_kernel(self):
        result = Simulator(square_ring(12), engine="kernel").run()
        assert result.gathered

    def test_batch_accepts_kernel(self):
        from repro.core.batch import gather_batch
        batch = gather_batch([square_ring(8), square_ring(10)],
                             engine="kernel", keep_reports=False)
        assert batch.all_gathered

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Simulator(square_ring(8), engine="warp")

    def test_kernel_trace_matches_reference(self):
        pts = square_ring(12)
        a = Simulator(list(pts), engine="reference", record_trace=True).run()
        b = Simulator(list(pts), engine="kernel", record_trace=True).run()
        assert len(a.trace.snapshots) == len(b.trace.snapshots)
        for sa, sb in zip(a.trace.snapshots, b.trace.snapshots):
            assert sa.positions == sb.positions
            assert sa.ids == sb.ids
            assert [(r.robot_id, r.direction, r.mode) for r in sa.runs] == \
                [(r.robot_id, r.direction, r.mode) for r in sb.runs]
