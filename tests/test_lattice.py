"""Unit tests for the grid substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.grid.lattice import (
    AXIS_DIRECTIONS,
    ALL_DIRECTIONS,
    BoundingBox,
    EAST,
    NORTH,
    SOUTH,
    WEST,
    ZERO,
    add,
    are_opposite,
    are_perpendicular,
    bounding_box,
    chebyshev,
    is_axis_unit,
    is_unit_move,
    manhattan,
    neg,
    path_is_connected,
    perpendicular,
    sub,
)

from tests.conftest import small_vectors


class TestVectorAlgebra:
    def test_add_sub_inverse(self):
        assert add((3, -2), (1, 5)) == (4, 3)
        assert sub(add((3, -2), (1, 5)), (1, 5)) == (3, -2)

    def test_neg(self):
        assert neg((2, -7)) == (-2, 7)
        assert neg(ZERO) == ZERO

    @given(small_vectors(), small_vectors())
    def test_add_commutes(self, a, b):
        assert add(a, b) == add(b, a)

    @given(small_vectors(), small_vectors())
    def test_sub_is_add_neg(self, a, b):
        assert sub(a, b) == add(a, neg(b))

    def test_manhattan(self):
        assert manhattan((0, 0), (3, 4)) == 7
        assert manhattan((1, 1)) == 2

    def test_chebyshev(self):
        assert chebyshev((0, 0), (3, 4)) == 4
        assert chebyshev((-2, 1)) == 2

    @given(small_vectors(), small_vectors())
    def test_chebyshev_le_manhattan(self, a, b):
        assert chebyshev(a, b) <= manhattan(a, b) <= 2 * chebyshev(a, b)


class TestDirections:
    def test_axis_units(self):
        for d in AXIS_DIRECTIONS:
            assert is_axis_unit(d)
        assert not is_axis_unit((1, 1))
        assert not is_axis_unit(ZERO)
        assert not is_axis_unit((2, 0))

    def test_unit_moves(self):
        for d in ALL_DIRECTIONS:
            assert is_unit_move(d)
        assert is_unit_move(ZERO)
        assert not is_unit_move((2, 0))

    def test_perpendicular_pairs(self):
        a, b = perpendicular(EAST)
        assert {a, b} == {NORTH, SOUTH}
        with pytest.raises(ValueError):
            perpendicular((1, 1))

    def test_are_perpendicular(self):
        assert are_perpendicular(EAST, NORTH)
        assert not are_perpendicular(EAST, WEST)
        assert not are_perpendicular(EAST, ZERO)

    def test_are_opposite(self):
        assert are_opposite(EAST, WEST)
        assert not are_opposite(EAST, EAST)
        assert not are_opposite(ZERO, ZERO)


class TestBoundingBox:
    def test_single_point(self):
        box = bounding_box([(3, 4)])
        assert (box.width, box.height, box.area) == (1, 1, 1)
        assert box.fits_in(1, 1)
        assert box.diameter == 0

    def test_spread(self):
        box = bounding_box([(0, 0), (4, 2), (-1, 5)])
        assert box == BoundingBox(-1, 0, 4, 5)
        assert box.width == 6 and box.height == 6
        assert not box.fits_in(5, 6)
        assert box.contains((0, 3))
        assert not box.contains((5, 0))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    @given(st.lists(small_vectors(), min_size=1, max_size=30))
    def test_contains_all_inputs(self, pts):
        box = bounding_box(pts)
        assert all(box.contains(p) for p in pts)
        assert box.area >= len(set(pts)) / max(len(pts), 1)


class TestPathConnectivity:
    def test_connected_open(self):
        assert path_is_connected([(0, 0), (1, 0), (1, 1)], closed=False)

    def test_closed_requires_wrap(self):
        assert not path_is_connected([(0, 0), (1, 0), (2, 0)], closed=True)
        assert path_is_connected([(0, 0), (1, 0), (1, 1), (0, 1)], closed=True)

    def test_coincident_ok(self):
        assert path_is_connected([(0, 0), (0, 0), (1, 0), (1, 0)], closed=True)

    def test_empty_is_connected(self):
        assert path_is_connected([], closed=True)
