"""The short-pattern priority rule (DESIGN.md §2.2 [D]).

Unit-level coverage of the cancellation semantics that break the
degenerate period-2 oscillators: shorter patterns pin their whites;
equal-length overlaps keep the paper's Fig. 3 behaviour exactly.
"""

from repro.grid.lattice import NORTH, SOUTH
from repro.core.chain import ClosedChain
from repro.core.merges import plan_merges
from repro.core.simulator import gather
from repro.chains import crenellation

K_MAX = 10

#: doubled flat chain with end spikes — the canonical oscillator
OSCILLATOR = [(0, 0), (1, 0), (2, 0), (2, 1), (2, 0), (1, 0), (0, 0), (0, 1)]


class TestCancellation:
    def test_longer_patterns_cancelled_by_spikes(self):
        chain = ClosedChain(OSCILLATOR, validate=True)
        plan = plan_merges(chain.positions, chain.ids, K_MAX)
        assert plan.cancelled == 2                  # both k=3 row patterns
        assert all(p.k == 1 for p in plan.patterns)  # only spikes execute

    def test_spike_whites_stay_and_absorb(self):
        chain = ClosedChain(OSCILLATOR, validate=True)
        plan = plan_merges(chain.positions, chain.ids, K_MAX)
        # spikes at indices 3 and 7 hop; their whites (2,4) and (6,0) stay
        assert plan.hops.get(3) == SOUTH
        assert plan.hops.get(7) == SOUTH
        for white in (2, 4, 6, 0):
            assert white not in plan.hops

    def test_oscillator_now_gathers(self):
        result = gather(list(OSCILLATOR), check_invariants=True)
        assert result.gathered
        assert result.rounds <= 4

    def test_participants_only_from_executing_patterns(self):
        chain = ClosedChain(OSCILLATOR, validate=True)
        plan = plan_merges(chain.positions, chain.ids, K_MAX)
        # row-interior robots (indices 1 and 5) belong only to cancelled
        # patterns: they are not participants and may act as runners
        assert chain.ids[1] not in plan.participants
        assert chain.ids[5] not in plan.participants


class TestEqualLengthUnchanged:
    def test_crenellation_keeps_fig3a_semantics(self):
        # all patterns are k=2: nothing is cancelled, blacks-with-white
        # duties still hop (the paper's Fig. 3a behaviour)
        pts = crenellation(teeth=6, tooth_width=1, base_height=13)
        chain = ClosedChain(pts)
        plan = plan_merges(chain.positions, chain.ids, K_MAX)
        assert plan.cancelled == 0
        assert len(plan.patterns) >= 8

    def test_single_pattern_never_cancelled(self):
        from repro.chains import square_ring
        ring = square_ring(24)
        bump = [(12, 0), (12, 1), (12, 0)]
        i = ring.index(bump[0])
        j = ring.index(bump[-1])
        pts = ring[:i + 1] + bump[1:-1] + ring[j:]
        chain = ClosedChain(pts)
        plan = plan_merges(chain.positions, chain.ids, K_MAX)
        assert plan.cancelled == 0 and len(plan.patterns) == 1


class TestProgressGuarantee:
    def test_minimal_k_always_executes(self):
        # whenever patterns exist, the ones of minimal k survive
        for pts in (OSCILLATOR,
                    crenellation(4, 1, 13),
                    [(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (3, 0),
                     (2, 0), (1, 0), (0, 0), (0, 1)]):
            chain = ClosedChain(pts, validate=True)
            plan = plan_merges(chain.positions, chain.ids, K_MAX)
            if plan.patterns or plan.cancelled:
                assert plan.patterns, "cancellation starved all patterns"
                k_min = min(p.k for p in plan.patterns)
                assert any(p.k == k_min for p in plan.patterns)
