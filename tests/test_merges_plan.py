"""Merge planning: hop combination and overlap resolution (Fig. 3)."""

from hypothesis import given

from repro.grid.lattice import EAST, NORTH, SOUTH, WEST, is_unit_move
from repro.core.chain import ClosedChain
from repro.core.merges import plan_merges
from repro.core.patterns import find_merge_patterns
from repro.chains import crenellation, square_ring

from tests.conftest import closed_chain_positions

K_MAX = 10


class TestBasicPlanning:
    def test_single_pattern_hops(self):
        ring = square_ring(24)
        bump = [(11, 0), (11, 1), (12, 1), (13, 1), (13, 0)]
        i = ring.index(bump[0])
        j = ring.index(bump[-1])
        pts = ring[:i + 1] + bump[1:-1] + ring[j:]
        plan = plan_merges(pts, list(range(len(pts))), K_MAX)
        assert plan.any and len(plan.patterns) == 1
        black = pts.index((12, 1))
        assert plan.hops[black] == SOUTH
        assert pts.index((11, 0)) in plan.participants   # a white

    def test_small_symmetric_ring_implodes_diagonally(self):
        # the 3x3-like ring: every robot is black in two perpendicular
        # U-shapes, so all hops combine to diagonals toward the centre
        pts = [(0, 0), (0, 1), (1, 1), (2, 1), (2, 0), (2, -1),
               (1, -1), (0, -1)]
        plan = plan_merges(pts, list(range(8)), K_MAX)
        assert plan.hops[1] == (1, -1)        # south + east
        assert plan.conflicts == 0

    def test_empty_chain_plan(self):
        plan = plan_merges([(0, 0), (1, 0), (1, 1), (0, 1)][:0], [], K_MAX)
        assert not plan.any and plan.hops == {}

    def test_mergeless_plan_empty(self):
        pts = square_ring(16)
        plan = plan_merges(pts, list(range(len(pts))), K_MAX)
        assert not plan.any


class TestOverlaps:
    def test_perpendicular_combination_is_diagonal(self):
        ring = [(0, 0), (0, 1), (1, 1), (1, 0), (0, 0), (0, -1),
                (-1, -1), (-1, 0)]
        plan = plan_merges(ring, list(range(8)), K_MAX)
        assert plan.hops[2] == (-1, -1)        # Fig. 3b: south-west diagonal
        assert plan.conflicts == 0

    def test_black_beats_white(self):
        # crenellation: interior robots are black in one pattern and
        # white in the adjacent one; they must hop (Fig. 3a)
        pts = crenellation(teeth=6, tooth_width=1, base_height=13)
        chain = ClosedChain(pts)
        plan = plan_merges(chain.positions, chain.ids, K_MAX)
        black_and_white = 0
        n = len(pts)
        for pat in plan.patterns:
            for b in pat.black_indices(n):
                for other in plan.patterns:
                    if other is pat:
                        continue
                    if b in other.white_indices(n):
                        black_and_white += 1
                        assert chain.ids[b] in plan.hops
        assert black_and_white > 0

    def test_no_opposite_conflicts_possible(self):
        pts = crenellation(teeth=8, tooth_width=1, base_height=13)
        chain = ClosedChain(pts)
        plan = plan_merges(chain.positions, chain.ids, K_MAX)
        assert plan.conflicts == 0


class TestPlanProperties:
    @given(closed_chain_positions(max_cells=30))
    def test_hops_are_unit_moves(self, pts):
        plan = plan_merges(pts, list(range(len(pts))), K_MAX)
        assert all(is_unit_move(h) for h in plan.hops.values())
        assert plan.conflicts == 0

    @given(closed_chain_positions(max_cells=30))
    def test_hoppers_are_participants(self, pts):
        plan = plan_merges(pts, list(range(len(pts))), K_MAX)
        assert set(plan.hops) <= plan.participants

    @given(closed_chain_positions(max_cells=30))
    def test_applying_plan_keeps_connectivity_and_merges(self, pts):
        chain = ClosedChain(pts)
        if chain.is_gathered():
            return          # the 2x2 symmetry cannot be broken (paper §1)
        plan = plan_merges(chain.positions, chain.ids, K_MAX)
        if not plan.any:
            return
        chain.apply_moves(plan.hops)
        records = chain.contract_coincident(set(plan.hops))
        chain.validate()                       # connectivity preserved
        assert len(records) >= 1               # every pattern round merges
