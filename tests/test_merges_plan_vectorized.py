"""Vectorised merge planner ≡ reference planner (overlap semantics).

:func:`plan_merges_arrays` must reproduce the reference
:func:`plan_merges` exactly — hops, participants, conflict and
cancellation counts, executing-pattern order — on arbitrary
overlapping pattern sets, including the Fig. 3a/3b cases and the
short-pattern priority rule.  Both planner paths (small-case Python
and bulk NumPy) are covered by driving the pattern count across the
``_NUMPY_MIN_PATTERNS`` crossover.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chain import CODE_TO_DIR
from repro.core.merges import (
    _NUMPY_MIN_PATTERNS,
    _plan_arrays_np,
    _plan_arrays_py,
    plan_merges,
    plan_merges_arrays,
)
from repro.core.patterns import MergePattern

EAST, NORTH, WEST, SOUTH = CODE_TO_DIR


def _to_reference_form(plan, n):
    """Render a KernelMergePlan in the reference plan's id-keyed terms."""
    ids_arr = np.arange(n)
    hops = {int(i): (int(v[0]), int(v[1]))
            for i, v in zip(list(plan.hop_idx), list(plan.hop_vec))}
    return hops, plan.participant_ids(ids_arr)


def assert_plans_match(patterns, n, k_max=10):
    positions = [(0, 0)] * n
    ids = list(range(n))
    ref = plan_merges(positions, ids, k_max, patterns=list(patterns))
    ker = plan_merges_arrays(list(patterns), n)
    hops, participants = _to_reference_form(ker, n)
    assert hops == ref.hops
    assert participants == ref.participants
    assert ker.conflicts == ref.conflicts
    assert ker.cancelled == ref.cancelled
    assert ker.patterns == ref.patterns


@st.composite
def pattern_sets(draw):
    n = draw(st.integers(min_value=6, max_value=48))
    count = draw(st.integers(min_value=1, max_value=40))
    patterns = [
        MergePattern(first_black=draw(st.integers(0, n - 1)),
                     k=draw(st.integers(1, min(8, n - 2))),
                     direction=CODE_TO_DIR[draw(st.integers(0, 3))])
        for _ in range(count)]
    return n, patterns


class TestPlannerEquivalence:
    @given(pattern_sets())
    def test_random_overlapping_sets(self, case):
        n, patterns = case
        assert_plans_match(patterns, n)

    def test_fig3a_black_and_white(self):
        # one robot white in one pattern, black in the other: hops as black
        patterns = [MergePattern(2, 2, NORTH), MergePattern(5, 2, NORTH)]
        assert_plans_match(patterns, 12)

    def test_fig3b_diagonal_hop(self):
        # a robot black in two equal-length perpendicular patterns hops
        # diagonally (equal lengths: the priority rule cancels neither)
        patterns = [MergePattern(3, 2, NORTH), MergePattern(4, 2, EAST)]
        n = 12
        ref = plan_merges([(0, 0)] * n, list(range(n)), 10,
                          patterns=list(patterns))
        ker = plan_merges_arrays(list(patterns), n)
        hops, _ = _to_reference_form(ker, n)
        assert hops == ref.hops
        assert (1, 1) in hops.values()     # the diagonal hop fired

    def test_short_pattern_priority_cancels(self):
        # the long pattern's white is a black of a strictly shorter one
        long = MergePattern(4, 6, NORTH)
        short = MergePattern(2, 2, EAST)    # covers index 3 == long's white
        assert_plans_match([long, short], 16)
        ker = plan_merges_arrays([long, short], 16)
        assert ker.cancelled == 1
        assert ker.patterns == [short]

    def test_opposite_directions_conflict(self):
        patterns = [MergePattern(3, 2, NORTH), MergePattern(3, 2, SOUTH)]
        assert_plans_match(patterns, 10)
        ker = plan_merges_arrays(patterns, 10)
        assert ker.conflicts == 2           # both blacks frozen

    def test_same_direction_overlap_single_hop(self):
        patterns = [MergePattern(3, 3, NORTH), MergePattern(4, 3, NORTH)]
        assert_plans_match(patterns, 12)


class TestPlannerPaths:
    def test_small_path_selected(self):
        patterns = [MergePattern(2, 1, NORTH)]
        assert len(patterns) < _NUMPY_MIN_PATTERNS
        ker = plan_merges_arrays(patterns, 8)
        assert isinstance(ker.hop_idx, list)

    def test_numpy_path_selected_and_equal(self):
        rng = random.Random(7)
        n = 64
        patterns = [MergePattern(rng.randrange(n), rng.randrange(1, 6),
                                 CODE_TO_DIR[rng.randrange(4)])
                    for _ in range(_NUMPY_MIN_PATTERNS + 5)]
        ker_np = plan_merges_arrays(list(patterns), n)
        ker_py = _plan_arrays_py(list(patterns), n)
        assert isinstance(ker_np.hop_idx, np.ndarray)
        hops_np, parts_np = _to_reference_form(ker_np, n)
        hops_py, parts_py = _to_reference_form(ker_py, n)
        assert hops_np == hops_py
        assert parts_np == parts_py
        assert ker_np.conflicts == ker_py.conflicts
        assert ker_np.cancelled == ker_py.cancelled
        assert ker_np.patterns == ker_py.patterns

    @given(pattern_sets())
    @settings(max_examples=25)
    def test_both_paths_agree(self, case):
        n, patterns = case
        ker_np = _plan_arrays_np(list(patterns), n)
        ker_py = _plan_arrays_py(list(patterns), n)
        ref = plan_merges([(0, 0)] * n, list(range(n)), 10,
                          patterns=list(patterns))
        for ker in (ker_np, ker_py):
            hops, parts = _to_reference_form(ker, n)
            assert hops == ref.hops
            assert parts == ref.participants
            assert ker.conflicts == ref.conflicts
            assert ker.cancelled == ref.cancelled
            assert ker.patterns == ref.patterns
