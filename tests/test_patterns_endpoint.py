"""Quasi-line endpoint visibility — termination condition 2 grammar."""

import pytest

from repro.grid.lattice import EAST, NORTH
from repro.core.chain import ClosedChain
from repro.core.patterns import endpoint_visible_ahead
from repro.core.view import ChainWindow
from repro.chains import outline, rectangle_ring, square_ring, stairway_octagon

V = 11
K_MAX = 10


def _visible(chain, index, direction, axis=EAST, k_max=K_MAX):
    w = ChainWindow(chain, index, V)
    return endpoint_visible_ahead(w, direction, axis, k_max)


class TestPerpendicularSegment:
    def test_corner_within_view_terminates(self):
        # square ring: from the bottom side, the vertical side begins at
        # the corner; two equal perpendicular edges are the signal
        chain = ClosedChain(square_ring(10))
        i = chain.positions.index((2, 0))
        assert _visible(chain, i, 1)      # corner at (9,0), 7 ahead

    def test_far_corner_invisible(self):
        chain = ClosedChain(square_ring(30))
        i = chain.positions.index((2, 0))
        assert not _visible(chain, i, 1)  # corner 27 edges away


class TestStairway:
    def test_stairway_ahead_terminates(self):
        chain = ClosedChain(stairway_octagon(16, steps=3))
        # robot on the bottom side heading toward the NE stairway
        i = chain.positions.index((10, 0))
        assert _visible(chain, i, 1)

    def test_stairway_beyond_horizon_invisible(self):
        chain = ClosedChain(stairway_octagon(16, steps=3))
        i = chain.positions.index((2, 0))
        assert not _visible(chain, i, 1)


class TestLegalFeaturesDoNotTerminate:
    def test_jog_is_not_an_endpoint(self):
        cells = {(x, y) for x in range(13) for y in range(13)}
        cells |= {(x, y) for x in range(13, 26) for y in range(1, 13)}
        chain = ClosedChain(outline(cells))
        i = chain.positions.index((8, 0))
        assert not _visible(chain, i, 1)   # the jog at x=13 is interior

    def test_mergeable_u_is_skipped(self):
        # a bump (mergeable U) on a long side does not end the line
        ring = square_ring(30)
        bump = [(14, 0), (14, 1), (15, 1), (16, 1), (16, 0)]
        i0 = ring.index(bump[0])
        j0 = ring.index(bump[-1])
        pts = ring[:i0 + 1] + bump[1:-1] + ring[j0:]
        chain = ClosedChain(pts)
        i = chain.positions.index((10, 0))
        assert not _visible(chain, i, 1)

    def test_unmergeable_wiggle_continues(self):
        # a wide dip (segments >= 3 robots) is legal quasi-line structure
        cells = {(x, y) for x in range(30) for y in range(13, 26)}
        cells |= {(x, y) for x in range(8, 22) for y in range(12, 14)}
        chain = ClosedChain(outline(cells))
        idx = chain.positions.index((2, 13))
        assert not _visible(chain, idx, 1 if chain.position(idx + 1) == (3, 13) else -1)


class TestHorizon:
    def test_unresolved_at_horizon_is_not_endpoint(self):
        chain = ClosedChain(rectangle_ring(40, 13))
        i = chain.positions.index((5, 0))
        assert not _visible(chain, i, 1)

    def test_axis_parameter_matters(self):
        # traveling along the vertical side with vertical axis: the next
        # corner (horizontal segment) is the endpoint
        chain = ClosedChain(square_ring(10))
        i = chain.positions.index((9, 2))
        direction = 1 if chain.position(i + 1) == (9, 3) else -1
        assert endpoint_visible_ahead(ChainWindow(chain, i, V), direction,
                                      NORTH, K_MAX)
