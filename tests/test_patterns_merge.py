"""Merge pattern recognition (paper Fig. 2) — reference detector."""

import pytest
from hypothesis import given, strategies as st

from repro.grid.lattice import EAST, NORTH, SOUTH, WEST
from repro.grid.transforms import DIHEDRAL_GROUP
from repro.core.chain import ClosedChain
from repro.core.patterns import MergePattern, find_merge_patterns
from repro.chains import square_ring, stairway_octagon, staircase_ring

from tests.conftest import closed_chain_positions

K_MAX = 10


def _pattern_set(positions, k_max=K_MAX):
    return {(p.first_black, p.k, p.direction)
            for p in find_merge_patterns(positions, k_max)}


class TestSpikes:
    def test_simple_spike(self):
        pts = [(1, 0), (1, 1), (1, 0), (0, 0), (0, -1), (1, -1), (2, -1), (2, 0)]
        pats = find_merge_patterns(pts, K_MAX)
        spikes = [p for p in pats if p.k == 1]
        assert any(p.first_black == 1 and p.direction == SOUTH for p in spikes)

    def test_doubling_back_is_spike(self):
        # straight run out and back: the turn robot is a k=1 black
        pts = [(0, 0), (1, 0), (2, 0), (1, 0), (0, 0), (0, -1), (1, -1),
               (2, -1), (2, -2), (1, -2), (0, -2), (0, -1)]
        pats = find_merge_patterns(pts, K_MAX)
        assert any(p.k == 1 and p.direction == WEST for p in pats)

    def test_white_positions_coincide(self):
        pts = [(1, 0), (1, 1), (1, 0), (0, 0), (0, -1), (1, -1), (2, -1), (2, 0)]
        pat = [p for p in find_merge_patterns(pts, K_MAX) if p.k == 1][0]
        w0, w1 = pat.white_indices(len(pts))
        assert pts[w0] == pts[w1]


class TestUShapes:
    @pytest.mark.parametrize("k", [2, 3, 5, 10])
    def test_k_blacks_detected(self, k):
        # bump of width k on the bottom of a large square ring
        side = 3 * k + 9
        ring = square_ring(side)
        x0 = side // 2 - k // 2
        bump = [(x0 + j, 1) for j in range(k)]
        i = ring.index((x0, 0))
        j = ring.index((x0 + k - 1, 0))
        pts = ring[:i + 1] + bump + ring[j:]
        pats = [p for p in find_merge_patterns(pts, K_MAX) if p.k == k]
        assert len(pats) == 1
        assert pats[0].direction == SOUTH

    def test_k_max_caps_detection(self):
        ring = square_ring(8)          # sides of 8 robots -> k = 8 patterns
        assert any(p.k == 8 for p in find_merge_patterns(ring, 10))
        assert not find_merge_patterns(ring, 7)

    def test_participants_cover_blacks_and_whites(self):
        pts = [(0, 0), (0, 1), (1, 1), (2, 1), (2, 0), (2, -1),
               (1, -1), (0, -1)]
        pats = [p for p in find_merge_patterns(pts, K_MAX) if p.k == 3]
        n = len(pts)
        for p in pats:
            assert len(p.black_indices(n)) == 3
            assert len(p.participant_indices(n)) == 5

    def test_wraparound_pattern(self):
        # rotate a ring so the pattern spans the index wrap
        pts = [(0, 0), (0, 1), (1, 1), (2, 1), (2, 0), (2, -1),
               (1, -1), (0, -1)]
        rotated = pts[5:] + pts[:5]
        ks = sorted(p.k for p in find_merge_patterns(rotated, K_MAX))
        assert ks == sorted(p.k for p in find_merge_patterns(pts, K_MAX))


class TestMergelessFamilies:
    def test_octagon_mergeless(self):
        assert find_merge_patterns(stairway_octagon(16, 3), K_MAX) == []

    def test_large_square_mergeless(self):
        assert find_merge_patterns(square_ring(16), K_MAX) == []

    def test_staircase_mergeless(self):
        assert find_merge_patterns(staircase_ring(2), K_MAX) == []

    def test_small_square_not_mergeless(self):
        assert find_merge_patterns(square_ring(6), K_MAX)


class TestEquivariance:
    @given(closed_chain_positions(max_cells=25))
    def test_detection_commutes_with_symmetry(self, pts):
        base = find_merge_patterns(pts, K_MAX)
        for t in DIHEDRAL_GROUP[1:4]:
            image = find_merge_patterns([t.apply(p) for p in pts], K_MAX)
            assert len(image) == len(base)
            assert sorted((p.first_black, p.k) for p in image) == \
                sorted((p.first_black, p.k) for p in base)

    @given(closed_chain_positions(max_cells=25))
    def test_blacks_adjacent_to_whites(self, pts):
        n = len(pts)
        for p in find_merge_patterns(pts, K_MAX):
            blacks = p.black_indices(n)
            w0, w1 = p.white_indices(n)
            d = p.direction
            first, last = blacks[0], blacks[-1]
            assert pts[w0] == (pts[first][0] + d[0], pts[first][1] + d[1])
            assert pts[w1] == (pts[last][0] + d[0], pts[last][1] + d[1])


class TestDegenerate:
    def test_tiny_chain_no_patterns(self):
        assert find_merge_patterns([(0, 0), (1, 0)], K_MAX) == []
        assert find_merge_patterns([(0, 0)], K_MAX) == []

    def test_unit_square_pattern(self):
        pats = find_merge_patterns([(0, 0), (1, 0), (1, 1), (0, 1)], K_MAX)
        # the 4-ring contains k<=2 U-shapes but it is already gathered;
        # the detector just reports what is there
        assert all(p.k <= 2 for p in pats)
