"""Run-start shape recognition (paper Fig. 5)."""

import pytest

from repro.grid.transforms import DIHEDRAL_GROUP
from repro.core.chain import ClosedChain
from repro.core.patterns import run_start_decisions
from repro.core.view import ChainWindow
from repro.chains import rectangle_ring, square_ring, stairway_octagon

V = 11


def _starts_at(chain, index):
    return run_start_decisions(ChainWindow(chain, index, V))


def _all_starts(chain):
    out = {}
    for i in range(chain.n):
        ds = _starts_at(chain, i)
        if ds:
            out[chain.position(i)] = ds
    return out


class TestCaseII:
    def test_square_corners_fire_twice(self):
        chain = ClosedChain(square_ring(16))
        starts = _all_starts(chain)
        assert set(starts) == {(0, 0), (15, 0), (15, 15), (0, 15)}
        for ds in starts.values():
            assert sorted(d.direction for d in ds) == [-1, 1]
            assert {d.kind for d in ds} == {"ii"}

    def test_axis_matches_segment(self):
        chain = ClosedChain(square_ring(16))
        i = chain.positions.index((0, 0))
        for rs in _starts_at(chain, i):
            nxt = chain.position(i + rs.direction)
            assert rs.axis == (nxt[0] - 0, nxt[1] - 0)

    def test_rotated_square(self):
        for t in DIHEDRAL_GROUP:
            chain = ClosedChain([t.apply(p) for p in square_ring(16)])
            assert len(_all_starts(chain)) == 4


class TestCaseI:
    def test_octagon_junctions(self):
        chain = ClosedChain(stairway_octagon(16, steps=3))
        starts = _all_starts(chain)
        assert len(starts) == 8
        for ds in starts.values():
            assert len(ds) == 1 and ds[0].kind == "i"

    def test_run_moves_into_the_line(self):
        chain = ClosedChain(stairway_octagon(16, steps=3))
        for i in range(chain.n):
            for rs in _starts_at(chain, i):
                # the segment ahead of the run is straight for >= 2 edges
                p0 = chain.position(i)
                p1 = chain.position(i + rs.direction)
                p2 = chain.position(i + 2 * rs.direction)
                e1 = (p1[0] - p0[0], p1[1] - p0[1])
                e2 = (p2[0] - p1[0], p2[1] - p1[1])
                assert e1 == e2 == rs.axis


class TestNegativeCases:
    def test_interior_jog_does_not_fire(self):
        # two fat blocks with a jogged bottom: the jog is quasi-line
        # interior, not an endpoint
        from repro.chains import outline
        cells = {(x, y) for x in range(13) for y in range(13)}
        cells |= {(x, y) for x in range(13, 26) for y in range(1, 13)}
        chain = ClosedChain(outline(cells))
        jog_corners = {(13, 0), (13, 1)}
        for i in range(chain.n):
            if chain.position(i) in jog_corners:
                assert _starts_at(chain, i) == []

    def test_straight_interior_does_not_fire(self):
        chain = ClosedChain(square_ring(16))
        i = chain.positions.index((7, 0))
        assert _starts_at(chain, i) == []

    def test_2xm_ring_has_no_starts(self):
        # the thin rectangle is one cyclic quasi line (caps are jogs)
        chain = ClosedChain(rectangle_ring(20, 2))
        assert _all_starts(chain) == {}
