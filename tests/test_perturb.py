"""Mutation fuzzing: perturbed chains stay valid and still gather."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chain import ClosedChain
from repro.core.simulator import gather
from repro.chains import perturb, rectangle_ring, square_ring
from repro.chains.perturb import _fold_corner, _insert_bulge, _insert_spike


class TestOperators:
    def test_insert_spike_adds_two(self):
        pts = square_ring(8)
        out = _insert_spike(list(pts), 3, random.Random(0))
        assert out is not None and len(out) == len(pts) + 2
        ClosedChain(out, require_disjoint_neighbors=True)

    def test_fold_corner_keeps_length(self):
        pts = square_ring(8)
        i = pts.index((0, 0))
        out = _fold_corner(list(pts), i, random.Random(0))
        assert out is not None and len(out) == len(pts)
        assert out[i] == (1, 1)
        ClosedChain(out, require_disjoint_neighbors=True)

    def test_fold_needs_a_corner(self):
        pts = square_ring(8)
        i = pts.index((3, 0))               # straight interior robot
        assert _fold_corner(list(pts), i, random.Random(0)) is None

    def test_insert_bulge_adds_two(self):
        pts = square_ring(8)
        i = pts.index((3, 0))
        out = _insert_bulge(list(pts), i, random.Random(0))
        assert out is not None and len(out) == len(pts) + 2
        ClosedChain(out, require_disjoint_neighbors=True)


class TestPerturb:
    def test_always_valid(self):
        rng = random.Random(1)
        pts = perturb(square_ring(10), mutations=25, rng=rng)
        chain = ClosedChain(pts, require_disjoint_neighbors=True)
        assert chain.n >= len(square_ring(10))

    def test_deterministic_with_seed(self):
        a = perturb(square_ring(10), 15, random.Random(42))
        b = perturb(square_ring(10), 15, random.Random(42))
        assert a == b

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzzed_chains_gather(self, seed):
        rng = random.Random(seed)
        pts = perturb(rectangle_ring(16, 10), mutations=20, rng=rng)
        result = gather(pts, check_invariants=True)
        assert result.gathered, f"fuzzed chain stalled (seed={seed})"

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15)
    def test_property_fuzzed_gathering(self, seed):
        rng = random.Random(seed)
        pts = perturb(square_ring(8), mutations=12, rng=rng)
        result = gather(pts, check_invariants=True)
        assert result.gathered
