"""SVG line charts."""

import os
import xml.etree.ElementTree as ET

import pytest

from repro.viz import Series, line_chart, save_line_chart
from repro.viz.plots import _nice_ticks


class TestTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0, 100)
        assert ticks[0] <= 0 + 25 and ticks[-1] >= 75
        assert all(b > a for a, b in zip(ticks, ticks[1:]))

    def test_degenerate_range(self):
        assert _nice_ticks(5, 5)

    def test_small_values(self):
        ticks = _nice_ticks(0.0, 1.3)
        assert len(ticks) >= 2


class TestLineChart:
    def test_well_formed(self):
        svg = line_chart([Series("a", [(0, 0), (1, 2), (2, 1)])],
                         title="t & t", x_label="n", y_label="rounds")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_series_markers_and_legend(self):
        svg = line_chart([
            Series("needle", [(10, 5), (20, 10)]),
            Series("square", [(10, 8), (20, 18)]),
        ])
        assert svg.count("<polyline") == 2
        assert "needle" in svg and "square" in svg
        assert svg.count("<circle") == 4

    def test_empty_series_render(self):
        svg = line_chart([Series("empty", [])])
        assert "<svg" in svg

    def test_single_point(self):
        svg = line_chart([Series("p", [(3, 3)])])
        assert svg.count("<polyline") == 0 and svg.count("<circle") == 1

    def test_save(self, tmp_path):
        path = save_line_chart(str(tmp_path / "chart.svg"),
                               [Series("a", [(0, 0), (1, 1)])])
        assert os.path.exists(path)

    def test_realistic_experiment_series(self):
        from repro.core.simulator import gather
        from repro.chains import needle
        pts = [(gather(needle(k)).initial_n, gather(needle(k)).rounds)
               for k in (10, 20, 40)]
        svg = line_chart([Series("needle", pts)],
                         title="Theorem 1", x_label="n", y_label="rounds")
        ET.fromstring(svg)
