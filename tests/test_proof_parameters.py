"""Behaviour under the proof's restricted setting (k_max = 2).

The proof of Lemma 1 assumes merges only up to k = 2.  That suffices
for the *analysis* (a mergeless-for-k=2 chain is mergeless for larger k
too) but not as an algorithm setting: EXP-A2 shows the liveness loss.
These tests pin the exact boundary behaviour.
"""

import pytest

from repro.core.config import PROOF_PARAMETERS
from repro.core.patterns import find_merge_patterns
from repro.core.simulator import gather
from repro.chains import crenellation, needle, square_ring, stairway_octagon


class TestWhatStillWorks:
    def test_needle_gathers(self):
        # thin rectangles collapse through k=2 cap merges only
        result = gather(needle(24), params=PROOF_PARAMETERS,
                        check_invariants=True)
        assert result.gathered

    def test_crenellation_gathers(self):
        result = gather(crenellation(4, 1, 2), params=PROOF_PARAMETERS,
                        check_invariants=True, max_rounds=2000)
        assert result.gathered

    def test_k2_detection_subset_of_k10(self):
        pts = crenellation(6, 1, 13)
        k2 = {(p.first_black, p.k) for p in find_merge_patterns(pts, 2)}
        k10 = {(p.first_black, p.k) for p in find_merge_patterns(pts, 10)}
        assert k2 <= k10
        assert all(k <= 2 for _, k in k2)


class TestDocumentedLivenessLoss:
    def test_square_ring_stalls_under_k2(self):
        """A good pair reaches passing distance before its middle becomes
        2-mergeable (odd/even gap mismatch) — the documented reason the
        algorithm defaults to the full merge range (DESIGN.md §2.2)."""
        result = gather(square_ring(16), params=PROOF_PARAMETERS,
                        max_rounds=800)
        assert result.stalled

    def test_mergeless_equivalence(self):
        # "if a chain is a Mergeless Chain for a bigger length, it also
        # is a Mergeless Chain for shorter lengths" (paper §5.1)
        pts = stairway_octagon(16, 3)
        assert not find_merge_patterns(pts, 10)
        assert not find_merge_patterns(pts, 2)
