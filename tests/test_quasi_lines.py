"""Definition 1 (quasi lines) and stairways (Fig. 16)."""

from repro.core.patterns import is_quasi_line, is_stairway, quasi_line_segments
from repro.chains import fig16_fragment


class TestQuasiLine:
    def test_straight_line(self):
        assert is_quasi_line([(x, 0) for x in range(6)], "x")

    def test_paper_example_shape(self):
        pts = [(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (4, 1), (5, 1),
               (6, 1), (6, 0), (7, 0), (8, 0), (9, 0)]
        assert is_quasi_line(pts, "x")
        assert not is_quasi_line(pts, "y")

    def test_short_axis_segment_rejected(self):
        pts = [(0, 0), (1, 0), (2, 0), (2, 1), (3, 1), (3, 2), (4, 2),
               (5, 2), (6, 2)]
        assert not is_quasi_line(pts, "x")     # 2-robot horizontal segment

    def test_tall_perpendicular_rejected(self):
        pts = [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2), (3, 2), (4, 2), (5, 2)]
        assert not is_quasi_line(pts, "x")     # 3 vertically aligned robots

    def test_needs_three_aligned_at_both_ends(self):
        pts = [(0, 0), (0, 1), (1, 1), (2, 1), (3, 1)]
        assert not is_quasi_line(pts, "x")     # starts with a vertical edge

    def test_too_short(self):
        assert not is_quasi_line([(0, 0), (1, 0)], "x")

    def test_vertical_quasi_line(self):
        pts = [(0, y) for y in range(5)]
        assert is_quasi_line(pts, "y")
        assert not is_quasi_line(pts, "x")

    def test_diagonal_rejected(self):
        assert not is_quasi_line([(0, 0), (1, 1), (2, 2)], "x")


class TestStairway:
    def test_alternating_steps(self):
        assert is_stairway([(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3)])

    def test_u_turn_rejected(self):
        assert not is_stairway([(0, 0), (0, 1), (1, 1), (1, 0)])

    def test_straight_run_rejected(self):
        assert not is_stairway([(0, 0), (1, 0), (2, 0)])

    def test_direction_must_advance(self):
        # alternating perpendicular turns that double back are not stairs
        assert not is_stairway([(0, 0), (0, 1), (1, 1), (1, 0), (2, 0)])

    def test_too_short(self):
        assert not is_stairway([(0, 0), (0, 1)])


class TestFig16Fragment:
    def test_structure(self):
        frag = fig16_fragment(line1=5, stair_steps=3, line2=5)
        assert is_quasi_line(frag[:6], "x")
        assert is_stairway(frag[5:13])
        assert is_quasi_line(frag[-6:], "x")


class TestSegments:
    def test_decomposition(self):
        pts = [(0, 0), (1, 0), (2, 0), (2, 1), (3, 1), (4, 1)]
        segs = quasi_line_segments(pts)
        axes = [s[0] for s in segs]
        assert axes[:3] == ["x", "y", "x"]

    def test_lengths_sum_to_edges(self):
        pts = [(0, 0), (1, 0), (2, 0), (2, 1), (3, 1), (4, 1)]
        segs = quasi_line_segments(pts)
        assert sum(s[2] for s in segs) == len(pts)   # cyclic edge count
