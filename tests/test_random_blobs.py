"""Random chain generation."""

import random

import pytest

from repro.errors import ChainError
from repro.core.chain import ClosedChain
from repro.chains import random_chain, random_polyomino
from repro.chains.boundary import fill_holes, is_connected


class TestRandomPolyomino:
    def test_size(self):
        blob = random_polyomino(25, random.Random(1))
        assert len(blob) >= 25                 # hole filling may add cells

    def test_connected_and_hole_free(self):
        blob = random_polyomino(40, random.Random(2))
        assert is_connected(blob)
        assert fill_holes(blob) == blob

    def test_elongation_produces_longer_outlines(self):
        from repro.chains.boundary import outline
        rng = random.Random(3)
        compact = sum(len(outline(random_polyomino(40, rng, 0.0)))
                      for _ in range(5))
        rng = random.Random(3)
        stringy = sum(len(outline(random_polyomino(40, rng, 0.9)))
                      for _ in range(5))
        assert stringy >= compact

    def test_rejects_zero(self):
        with pytest.raises(ChainError):
            random_polyomino(0)


class TestRandomChain:
    def test_target_accuracy(self):
        rng = random.Random(4)
        for target in (16, 48, 120):
            pts = random_chain(target, rng)
            assert abs(len(pts) - target) <= max(2, int(0.5 * target))

    def test_always_valid(self):
        rng = random.Random(5)
        for _ in range(10):
            pts = random_chain(40, rng)
            ClosedChain(pts, require_disjoint_neighbors=True)

    def test_deterministic_with_seed(self):
        assert random_chain(30, random.Random(7)) == \
            random_chain(30, random.Random(7))

    def test_rejects_tiny(self):
        with pytest.raises(ChainError):
            random_chain(2)
