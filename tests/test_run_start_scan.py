"""Vectorised run-start scan ≡ per-robot reference recogniser.

The ``"vectorized"`` engine replaces the per-robot
:func:`repro.core.patterns.run_start_decisions` loop with one pass over
the chain's cached edge codes
(:func:`repro.core.engine_vectorized.scan_run_starts`).  The contract
is exact behavioural equivalence including emission order (ascending
chain index, direction +1 before -1), property-tested here on random
polyomino blobs and perturbed shapes.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.chain import ClosedChain
from repro.core.engine_vectorized import scan_run_starts
from repro.core.patterns import run_start_decisions
from repro.core.view import ChainWindow
from repro.chains import (
    comb, crenellation, needle, perturb, random_chain, spiral, square_ring,
    stairway_octagon,
)

from tests.conftest import closed_chain_positions

V = 11


def reference_starts(chain):
    """Per-robot reference scan: (index, RunStart) pairs in engine order."""
    out = []
    for i in range(chain.n):
        window = ChainWindow(chain, i, V)
        for rs in run_start_decisions(window):
            out.append((i, rs))
    return out


class TestScanEquivalence:
    @pytest.mark.parametrize("pts", [
        square_ring(8), square_ring(24), needle(12), comb(4),
        crenellation(5), stairway_octagon(10, 2), spiral(1),
    ], ids=["sq8", "sq24", "needle", "comb", "cren", "oct", "spiral"])
    def test_families(self, pts):
        chain = ClosedChain(pts)
        assert scan_run_starts(chain) == reference_starts(chain)

    @given(closed_chain_positions(max_cells=40))
    def test_random_blobs(self, pts):
        chain = ClosedChain(pts)
        assert scan_run_starts(chain) == reference_starts(chain)

    @given(closed_chain_positions(max_cells=30),
           st.integers(min_value=0, max_value=2 ** 16))
    def test_perturbed_shapes(self, pts, seed):
        mutated = perturb(list(pts), mutations=6, rng=random.Random(seed))
        chain = ClosedChain(mutated)
        assert scan_run_starts(chain) == reference_starts(chain)

    def test_mid_gathering_states(self):
        """Equivalence must also hold on chains with coincident robots
        (post-merge states are not valid *initial* chains)."""
        from repro.core.simulator import Simulator
        sim = Simulator(square_ring(12), engine="reference",
                        check_invariants=True)
        for _ in range(40):
            if sim.is_gathered():
                break
            sim.step()
            chain = sim.chain
            assert scan_run_starts(chain) == reference_starts(chain)

    def test_small_wrapping_chain(self):
        # the window wraps the whole chain: modular indexing paths
        chain = ClosedChain(square_ring(3))     # n = 8 < V
        assert scan_run_starts(chain) == reference_starts(chain)
