"""Run states and the registry (constant-memory bookkeeping)."""

import pytest

from repro.grid.lattice import EAST, WEST
from repro.core.runs import RunMode, RunRegistry, RunState, StopReason


@pytest.fixture
def registry():
    return RunRegistry()


class TestLifecycle:
    def test_start(self, registry):
        run = registry.start(5, 1, EAST, 0)
        assert run is not None and run.active
        assert registry.runs_on(5) == [run]
        assert registry.directions_on(5) == (1,)
        assert len(registry) == 1

    def test_capacity_two(self, registry):
        assert registry.start(5, 1, EAST, 0)
        assert registry.start(5, -1, WEST, 0)
        assert registry.start(5, 1, EAST, 0) is None     # same direction
        assert len(registry.runs_on(5)) == 2

    def test_duplicate_direction_rejected(self, registry):
        registry.start(5, 1, EAST, 0)
        assert registry.start(5, 1, EAST, 1) is None

    def test_stop(self, registry):
        run = registry.start(5, 1, EAST, 0)
        registry.stop(run, StopReason.ENDPOINT_VISIBLE, 3)
        assert not run.active
        assert run.stop_reason is StopReason.ENDPOINT_VISIBLE
        assert run.stopped_round == 3
        assert registry.runs_on(5) == []
        assert run in registry.stopped

    def test_double_stop_is_noop(self, registry):
        run = registry.start(5, 1, EAST, 0)
        registry.stop(run, StopReason.ENDPOINT_VISIBLE, 3)
        registry.stop(run, StopReason.MERGE_PARTICIPATION, 4)
        assert run.stop_reason is StopReason.ENDPOINT_VISIBLE

    def test_move(self, registry):
        run = registry.start(5, 1, EAST, 0)
        registry.move(run, 6)
        assert run.robot_id == 6
        assert registry.runs_on(5) == []
        assert registry.runs_on(6) == [run]

    def test_move_stopped_raises(self, registry):
        run = registry.start(5, 1, EAST, 0)
        registry.stop(run, StopReason.ENDPOINT_VISIBLE, 0)
        with pytest.raises(ValueError):
            registry.move(run, 6)

    def test_after_move_slot_frees(self, registry):
        run = registry.start(5, 1, EAST, 0)
        registry.move(run, 6)
        assert registry.start(5, 1, EAST, 1) is not None

    def test_active_runs_sorted_by_id(self, registry):
        r1 = registry.start(1, 1, EAST, 0)
        r2 = registry.start(2, -1, WEST, 0)
        assert registry.active_runs() == [r1, r2]

    def test_runs_lookup_callable(self, registry):
        registry.start(7, -1, WEST, 0)
        lookup = registry.runs_lookup()
        assert lookup(7) == (-1,)
        assert lookup(8) == ()


class TestRunState:
    def test_defaults(self):
        run = RunState(run_id=0, robot_id=3, direction=1, axis=EAST)
        assert run.mode is RunMode.NORMAL
        assert run.active
        assert run.travel_steps_left == 0
        assert run.target_id is None
        assert run.hops == 0
