"""SSYNC ablation: activation policies and break detection."""

import pytest

from repro.schedulers import (
    AlternatingActivation,
    FullActivation,
    RandomActivation,
    SplitPatternAdversary,
    SSyncEngine,
    run_ssync,
)
from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS
from repro.chains import crenellation, needle


class TestPolicies:
    def test_full_activation_selects_all(self):
        assert FullActivation().select(0, [1, 2, 3]) == {1, 2, 3}

    def test_random_probability_bounds(self):
        with pytest.raises(ValueError):
            RandomActivation(1.5)
        assert RandomActivation(0.0, 1).select(0, [1, 2, 3]) == set()
        assert RandomActivation(1.0, 1).select(0, [1, 2, 3]) == {1, 2, 3}

    def test_alternating_by_parity(self):
        pol = AlternatingActivation()
        assert pol.select(0, [0, 1, 2, 3]) == {0, 2}
        assert pol.select(1, [0, 1, 2, 3]) == {1, 3}

    def test_adversary_single_mover(self):
        pol = SplitPatternAdversary()
        assert pol.select(0, [5, 3, 7]) == {3}
        assert pol.select(0, []) == set()


class TestSSyncRuns:
    def test_full_activation_is_fsync(self):
        out = run_ssync(needle(20), FullActivation())
        assert out.gathered and out.survived

    @pytest.mark.parametrize("policy", [
        pytest.param(RandomActivation(0.5, seed=1), id="random-0.5"),
        pytest.param(AlternatingActivation(), id="alternating"),
        pytest.param(SplitPatternAdversary(), id="adversary"),
    ])
    def test_partial_activation_breaks(self, policy):
        out = run_ssync(crenellation(6), policy, max_rounds=300)
        assert out.broke
        assert out.break_round is not None and out.break_round < 50

    def test_engine_filters_moves(self):
        chain = ClosedChain(needle(20))
        engine = SSyncEngine(chain, DEFAULT_PARAMETERS,
                             SplitPatternAdversary(), check_invariants=False)
        report = engine.step()
        assert report.hops <= 1               # only one mover allowed


class TestExperiment:
    def test_exp_s1_quick(self):
        from repro.experiments.exp_ssync import run
        result = run(quick=True)
        assert result.passed, result.measured
