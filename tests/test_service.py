"""Protocol conformance for the gathering service (DESIGN.md §2.15).

The contract under test: every hostile wire line — malformed JSON,
oversized frames, invalid or oversized chains, unknown ops, mid-frame
disconnects — produces a structured ``bad-line`` frame (or a silent
hangup the *client* chose), never a dead server loop and never a
leaked slot; and results delivered over TCP are bit-identical to
``run_stream`` on the same submission order.

No pytest-asyncio in the image: each test drives its own event loop
through ``asyncio.run`` with the service bound to an ephemeral port on
loopback.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.chains import outline, random_polyomino, square_ring
from repro.core.admission import QueueSource, Starved, feed_queue
from repro.core.batch import BatchSimulator
from repro.service.client import GatherClient, ServiceError
from repro.service.protocol import (ProtocolError, decode_line,
                                    parse_positions, read_frames)
from repro.service.queue import FairAdmissionQueue
from repro.service.server import GatherService

RING8 = square_ring(8)
RING12 = square_ring(12)


def run(coro):
    return asyncio.run(coro)


class _Service:
    """Async context manager: a live service + one connected client."""

    def __init__(self, **kw):
        kw.setdefault("slots", 4)
        self.kw = kw
        self.service = None
        self.client = None

    async def __aenter__(self):
        self.service = GatherService(**self.kw)
        await self.service.start()
        self.client = await GatherClient.connect(
            "127.0.0.1", self.service.port)
        return self

    async def __aexit__(self, *exc):
        try:
            if exc[0] is None and not self.service.queue.closed:
                await self.client.shutdown()
                await asyncio.wait_for(self.service.wait_finished(), 60)
            else:
                self.service.begin_shutdown()
                await asyncio.wait_for(self.service.wait_finished(), 60)
        finally:
            await self.client.close()


def stream_reference(chains, slots=4):
    """What ``run_stream`` yields for the same admission order."""
    sim = BatchSimulator([], engine="kernel", backend="fleet",
                         keep_reports=False)
    ref = {}
    for idx, r in sim.run_stream(iter(chains), slots=slots):
        ref[idx] = {"chain": idx, "n": r.initial_n, "rounds": r.rounds,
                    "gathered": r.gathered,
                    "rounds_per_robot": round(r.rounds_per_robot, 3)}
    return ref


# ---------------------------------------------------------------------------
# wire basics
# ---------------------------------------------------------------------------

class TestWireBasics:
    def test_hello_banner(self):
        async def main():
            async with _Service(slots=3, queue_capacity=7) as ctx:
                h = ctx.client.hello
                assert h["status"] == "hello"
                assert h["slots"] == 3
                assert h["queue_capacity"] == 7
                assert h["version"] == 1
        run(main())

    def test_tcp_results_bit_identical_to_run_stream(self):
        chains = [RING8, RING12, RING8, outline(random_polyomino(9)),
                  RING12, RING8]

        async def main():
            async with _Service(slots=4) as ctx:
                for c in chains:
                    ack = await ctx.client.submit(c)
                    assert ack["status"] == "queued"
                frames = {}
                async for fr in ctx.client.results(expect=len(chains),
                                                   timeout=60):
                    assert fr["status"] == "result"
                    frames[fr["chain"]] = {
                        k: fr[k] for k in ("chain", "n", "rounds",
                                           "gathered", "rounds_per_robot")}
                return frames
        frames = run(main())
        assert frames == stream_reference(chains)

    def test_seq_maps_submissions_to_results(self):
        async def main():
            async with _Service() as ctx:
                for _ in range(5):
                    await ctx.client.submit(RING8)
                seqs = set()
                async for fr in ctx.client.results(expect=5, timeout=60):
                    seqs.add(fr["seq"])
                assert seqs == set(range(5))
        run(main())

    def test_status_frame_reports_health(self):
        async def main():
            async with _Service() as ctx:
                for _ in range(3):
                    await ctx.client.submit(RING8)
                await ctx.client.drain(timeout=60)
                st_doc = await ctx.client.status()
                assert st_doc["served"] == 3
                assert st_doc["accepted"] == 3
                assert st_doc["queue_depth"] == 0
                assert st_doc["occupancy"] == 0
                assert st_doc["rounds"] > 0
                assert "topo_rebuilds" in st_doc
                assert st_doc["chains_per_s"] >= 0
        run(main())

    def test_drain_and_shutdown(self):
        async def main():
            svc = GatherService(slots=2)
            await svc.start()
            cli = await GatherClient.connect("127.0.0.1", svc.port)
            await cli.submit(RING8)
            drained = await cli.drain(timeout=60)
            assert drained["delivered"] == 1
            bye = await cli.shutdown()
            assert bye["status"] == "bye"
            await asyncio.wait_for(svc.wait_finished(), 60)
            await cli.close()
        run(main())


# ---------------------------------------------------------------------------
# hostile input: every bad line a structured frame, never a dead loop
# ---------------------------------------------------------------------------

BAD_SUBMISSIONS = [
    ({"op": "submit"}, "bad-chain"),                      # missing chain
    ({"op": "submit", "chain": "nope"}, "bad-chain"),
    ({"op": "submit", "chain": []}, "bad-chain"),
    ({"op": "submit", "chain": [[0, 0], [1]]}, "bad-position"),
    ({"op": "submit", "chain": [[0, 0], "x"]}, "bad-position"),
    ({"op": "submit", "chain": [[0.5, 0], [1, 0]]}, "bad-position"),
    ({"op": "submit", "chain": [[True, 0], [1, 0]]}, "bad-position"),
    ({"op": "submit", "chain": [[0, 2 ** 62], [1, 0]]}, "bad-position"),
    ({"op": "submit", "chain": [[0, 0]] * 50}, "chain-too-long"),
    ({"op": "frobnicate"}, "unknown-op"),
    ({"noop": 1}, "unknown-op"),
]


class TestHostileFrames:
    def test_each_bad_line_gets_a_structured_frame(self):
        async def main():
            async with _Service(max_chain=40) as ctx:
                cli = ctx.client
                for doc, _ in BAD_SUBMISSIONS:
                    cli._send(doc)
                cli._writer.write(b"not json at all\n")
                cli._writer.write(b'[1, 2, 3]\n')       # JSON, not an object
                await cli._writer.drain()
                # the loop survives: a real submission still round-trips
                await cli.submit(RING8)
                fr = await cli.next_result(timeout=60)
                assert fr["status"] == "result"
                st_doc = await cli.status()
                assert len(cli.bad_lines) == len(BAD_SUBMISSIONS) + 2
                codes = [b["error"] for b in cli.bad_lines]
                for (_, want), got in zip(BAD_SUBMISSIONS, codes):
                    assert got == want
                assert "bad-json" in codes and "not-object" in codes
                # and nothing leaked a slot or a queue entry
                assert st_doc["occupancy"] == 0
                assert st_doc["queue_depth"] == 0
                assert st_doc["served"] == 1
        run(main())

    def test_oversized_line_rejected_connection_survives(self):
        async def main():
            async with _Service(max_line=512) as ctx:
                cli = ctx.client
                cli._writer.write(b"x" * 2048 + b"\n")
                await cli._writer.drain()
                await cli.submit(RING8)
                fr = await cli.next_result(timeout=60)
                assert fr["status"] == "result"
                assert any(b["error"] == "line-too-long"
                           for b in cli.bad_lines)
        run(main())

    def test_mid_frame_disconnect_leaves_server_alive(self):
        async def main():
            svc = GatherService(slots=4)
            await svc.start()
            try:
                # half a frame, then vanish
                r, w = await asyncio.open_connection("127.0.0.1", svc.port)
                await r.readline()  # hello
                w.write(b'{"op": "submit", "chain": [[0, 0')
                await w.drain()
                w.close()
                # a second client gets full service
                cli = await GatherClient.connect("127.0.0.1", svc.port)
                await cli.submit(RING8)
                fr = await cli.next_result(timeout=60)
                assert fr["status"] == "result"
                st_doc = await cli.status()
                assert st_doc["occupancy"] == 0
                await cli.shutdown()
                await asyncio.wait_for(svc.wait_finished(), 60)
                await cli.close()
            finally:
                svc.begin_shutdown()
        run(main())

    def test_poison_chain_quarantined_not_fatal(self):
        # structurally valid wire payload, semantically not a closed
        # chain: the kernel's admission validation quarantines it and
        # the service keeps streaming
        async def main():
            async with _Service() as ctx:
                await ctx.client.submit([(0, 0), (1, 0), (2, 0)])
                await ctx.client.submit(RING8)
                frames = [await ctx.client.next_result(timeout=60)
                          for _ in range(2)]
                by_status = {f["status"]: f for f in frames}
                assert set(by_status) == {"quarantined", "result"}
                bad = by_status["quarantined"]
                assert bad["error"]
                assert bad["stage"] == "admit"
        run(main())

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet=st.characters(blacklist_characters="\n\r"),
                   min_size=1, max_size=200))
    def test_fuzzed_lines_never_kill_the_loop(self, line):
        # arbitrary junk lines: either ignored (blank), rejected with a
        # structured frame, or — if they happen to parse as a valid op —
        # answered; in every case the connection still serves afterwards
        async def main():
            async with _Service() as ctx:
                cli = ctx.client
                cli._writer.write(line.encode("utf-8", "ignore") + b"\n")
                await cli._writer.drain()
                await cli.submit(RING8)
                fr = await cli.next_result(timeout=60)
                assert fr["status"] == "result"
        run(main())


# ---------------------------------------------------------------------------
# protocol layer units (fast hypothesis targets)
# ---------------------------------------------------------------------------

_JSONISH = st.recursive(
    st.none() | st.booleans() | st.integers() | st.floats(allow_nan=False)
    | st.text(max_size=20),
    lambda inner: st.lists(inner, max_size=5)
    | st.dictionaries(st.text(max_size=8), inner, max_size=5),
    max_leaves=20)


class TestProtocolUnits:
    @settings(max_examples=100, deadline=None)
    @given(_JSONISH)
    def test_parse_positions_total(self, payload):
        # total over arbitrary JSON: a position list or ProtocolError,
        # never any other exception
        try:
            pts = parse_positions(payload, max_chain=64)
        except ProtocolError:
            return
        assert pts and all(isinstance(x, int) and isinstance(y, int)
                           for x, y in pts)

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=200))
    def test_decode_line_total(self, raw):
        try:
            doc = decode_line(raw)
        except ProtocolError:
            return
        assert isinstance(doc, dict)

    def test_read_frames_resyncs_after_oversize(self):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(b"y" * 900 + b"\n")       # oversized
            reader.feed_data(b'{"op": "status"}\n')    # next line intact
            reader.feed_data(b"\r\n")                  # blank: skipped
            reader.feed_data(b'{"op": "drain"}\r\n')   # CRLF tolerated
            reader.feed_eof()
            return [f async for f in read_frames(reader, max_line=256)]
        frames = run(main())
        assert len(frames) == 3
        assert isinstance(frames[0][1], ProtocolError)
        assert frames[0][1].code == "line-too-long"
        assert frames[1][1] == {"op": "status"}
        assert frames[2][1] == {"op": "drain"}

    def test_read_frames_split_across_chunks(self):
        async def main():
            reader = asyncio.StreamReader()
            whole = b'{"op": "status"}\n{"op": "drain"}\n'
            for i in range(0, len(whole), 7):
                reader.feed_data(whole[i:i + 7])
            reader.feed_eof()
            return [doc async for _, doc in read_frames(reader)]
        assert run(main()) == [{"op": "status"}, {"op": "drain"}]


# ---------------------------------------------------------------------------
# admission machinery (the §2.15 seam under the service)
# ---------------------------------------------------------------------------

class TestAdmissionSeam:
    def test_queue_source_protocol(self):
        src = QueueSource(capacity=2)
        with pytest.raises(Starved):
            src.take()
        src.put("a")
        src.put("b")
        with pytest.raises(BlockingIOError):
            src.put_nowait("c")
        assert src.take() == "a"
        src.close()
        with pytest.raises(ValueError):
            src.put("d")
        assert src.take() == "b"
        with pytest.raises(StopIteration):
            src.take()
        assert src.peak_depth == 2

    def test_thread_fed_queue_source_bit_identical(self):
        import threading
        chains = [RING8, RING12, RING8, RING12]
        src = QueueSource(capacity=2)
        feeder = threading.Thread(target=feed_queue, args=(src, chains))
        feeder.start()
        sim = BatchSimulator([], engine="kernel", backend="fleet",
                             keep_reports=False)
        got = {}
        for idx, r in sim.run_stream(src, slots=2):
            got[idx] = {"chain": idx, "n": r.initial_n, "rounds": r.rounds,
                        "gathered": r.gathered,
                        "rounds_per_robot": round(r.rounds_per_robot, 3)}
        feeder.join()
        assert got == stream_reference(chains, slots=2)

    def test_constructor_chains_conflict_with_source(self):
        sim = BatchSimulator([RING8], engine="kernel", backend="fleet",
                             keep_reports=False)
        with pytest.raises(ValueError, match="admission source"):
            next(iter(sim.run_stream(QueueSource())))

    def test_fair_queue_round_robins_across_clients(self):
        q = FairAdmissionQueue()
        for i in range(4):
            q.submit("a", i, None, f"a{i}")
        for i in range(2):
            q.submit("b", i, None, f"b{i}")
        order = [q.take() for _ in range(6)]
        assert order == ["a0", "b0", "a1", "b1", "a2", "a3"]
        assert q.owner_of(1) == ("b", 0)
        assert q.owner_of(5) == ("a", 3)

    def test_fair_queue_close_drains_then_stops(self):
        q = FairAdmissionQueue()
        q.submit("a", 0, None, "x")
        q.close()
        assert q.take() == "x"
        with pytest.raises(StopIteration):
            q.take()

    def test_fair_queue_replay_served_first_without_owner(self):
        q = FairAdmissionQueue()
        q.feed_replay([(0, "r0", False), (1, "r1", False)])
        q.submit("a", 0, None, "live")
        assert [q.take() for _ in range(3)] == ["r0", "r1", "live"]
        assert q.owner_of(0) is None
        assert q.owner_of(2) == ("a", 0)

    def test_fair_queue_take_logging_skips_replayed_entries(self):
        logged = []
        q = FairAdmissionQueue(on_take=logged.append)
        q.feed_replay([(7, "old", False), (8, "retry", True)])
        q.submit("a", 0, 9, "new")
        for _ in range(3):
            q.take()
        assert logged == [8, 9]
