"""Load behaviour of the gathering service: backpressure, fairness,
and kill/resume durability (DESIGN.md §2.15).

Three contracts:

* the admission backlog never exceeds the configured capacity — parked
  submissions get explicit ``backpressure`` frames and are admitted in
  arrival order as space frees;
* a client pipelining thousands of chains cannot starve another
  client's trickle: takes round-robin across clients, so a late
  joiner's results land within a bounded window of its submissions;
* a SIGKILLed ``repro serve --wal`` process, restarted with
  ``--resume``, completes a ``results.ndjson`` byte-identical to an
  uninterrupted run's.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.chains import square_ring
from repro.service.client import GatherClient
from repro.service.queue import FairAdmissionQueue
from repro.service.server import GatherService

RING8 = square_ring(8)
RING16 = square_ring(16)


def run(coro):
    return asyncio.run(coro)


class TestBackpressure:
    def test_backlog_never_exceeds_capacity(self):
        async def main():
            svc = GatherService(slots=2, queue_capacity=3)
            await svc.start()
            cli = await GatherClient.connect("127.0.0.1", svc.port)
            for _ in range(25):
                ack = await cli.submit(RING8)
                assert ack["status"] == "queued"
                assert ack["queued"] <= 3
            await cli.drain(timeout=120)
            assert svc.queue.peak_depth <= 3
            assert cli.backpressure_seen > 0
            await cli.shutdown()
            await asyncio.wait_for(svc.wait_finished(), 60)
            await cli.close()
        run(main())

    def test_parked_submissions_admitted_in_arrival_order(self):
        q = FairAdmissionQueue(capacity=2)
        q.submit("a", 0, None, "a0")
        q.submit("a", 1, None, "a1")
        with pytest.raises(BlockingIOError):
            # parking needs a loop to create the wait future; without
            # one the queue refuses instead of blocking the caller
            q.submit("a", 2, None, "a2")

        async def main():
            loop = asyncio.get_running_loop()
            q2 = FairAdmissionQueue(capacity=2, loop=loop)
            q2.submit("a", 0, None, "a0")
            q2.submit("a", 1, None, "a1")
            f2 = q2.submit("a", 2, None, "a2")
            f3 = q2.submit("b", 0, None, "b0")
            assert f2 is not None and f3 is not None
            assert q2.parked() == 2
            assert q2.take() == "a0"          # frees one slot -> a2 enters
            await asyncio.wait_for(f2, 5)
            assert not f3.done()
            assert q2.qsize() == 2
            assert q2.take() == "a1"
            await asyncio.wait_for(f3, 5)
            # round-robin resumes over the promoted entries
            assert [q2.take(), q2.take()] == ["a2", "b0"]
            assert q2.peak_depth == 2
        run(main())

    def test_close_fails_parked_submitters(self):
        async def main():
            loop = asyncio.get_running_loop()
            q = FairAdmissionQueue(capacity=1, loop=loop)
            q.submit("a", 0, None, "a0")
            fut = q.submit("a", 1, None, "a1")
            q.close()
            with pytest.raises(ConnectionAbortedError):
                await asyncio.wait_for(fut, 5)
            assert q.take() == "a0"
            with pytest.raises(StopIteration):
                q.take()
        run(main())


class TestFairness:
    def test_late_client_not_starved_by_pipeliner(self):
        # A floods 24 chains; B then submits 4.  With slots=1 the
        # backlog persists, so B's chains must interleave into the
        # round-robin window right behind the in-flight takes instead
        # of queueing behind all of A's.
        async def main():
            svc = GatherService(slots=1, queue_capacity=64)
            await svc.start()
            a = await GatherClient.connect("127.0.0.1", svc.port)
            for _ in range(24):
                await a.submit(RING16)
            b = await GatherClient.connect("127.0.0.1", svc.port)
            for _ in range(4):
                await b.submit(RING8)
            b_idx = []
            async for fr in b.results(expect=4, timeout=120):
                assert fr["status"] == "result"
                b_idx.append(fr["chain"])
            await a.drain(timeout=120)
            await a.shutdown()
            await asyncio.wait_for(svc.wait_finished(), 60)
            await a.close()
            await b.close()
            return b_idx
        b_idx = run(main())
        # FIFO would admit B's chains at global indices 24..27; fair
        # round-robin alternates them with A's remaining backlog well
        # inside A's range even allowing for takes that happened
        # before B connected
        assert max(b_idx) < 24, b_idx

    def test_round_robin_window_bound(self):
        # pure queue-level check, fully deterministic: once both
        # clients have backlog, any K consecutive takes contain at
        # least floor(K/2) from each live client
        q = FairAdmissionQueue()
        for i in range(50):
            q.submit("flood", i, None, ("flood", i))
        for i in range(5):
            q.submit("trickle", i, None, ("trickle", i))
        takes = [q.take() for _ in range(10)]
        trickle_served = [t for t in takes if t[0] == "trickle"]
        assert len(trickle_served) == 5
        assert takes.index(("trickle", 4)) <= 9


class TestServiceKillResume:
    N = 30

    def _start(self, tmp_path, extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.getcwd(), "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--slots", "4", "--snapshot-every", "8"] + extra,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=os.getcwd())
        line = proc.stdout.readline()
        assert "serving on" in line, line
        port = int(line.split("(")[0].rsplit(":", 1)[1])
        return proc, port

    def test_sigkill_resume_ledger_byte_identical(self, tmp_path):
        clean = str(tmp_path / "clean")
        killed = str(tmp_path / "killed")

        async def feed(port, read_results, shutdown):
            cli = await GatherClient.connect("127.0.0.1", port)
            for _ in range(self.N):
                await cli.submit(RING8)
            for _ in range(read_results):
                await cli.next_result(timeout=60)
            if shutdown:
                await cli.drain(timeout=120)
                await cli.shutdown()
            await cli.close()

        async def shutdown_only(port):
            cli = await GatherClient.connect("127.0.0.1", port)
            await cli.shutdown()
            await cli.close()

        # reference: uninterrupted service over the same submissions.
        # Live admission is wire-paced, so completion *order* is
        # timing-dependent across independent runs; per-chain rows are
        # deterministic and (single client) global indices equal the
        # submission order in both runs.
        proc, port = self._start(tmp_path, ["--wal", clean])
        run(feed(port, 0, shutdown=True))
        assert proc.wait(timeout=60) == 0
        ref_rows = [json.loads(l) for l in
                    open(os.path.join(clean, "results.ndjson"), "rb")
                    .read().splitlines()]
        assert len(ref_rows) == self.N

        # kill mid-stream: some results delivered, backlog + parked
        # work outstanding
        proc, port = self._start(tmp_path, ["--wal", killed])
        run(feed(port, 7, shutdown=False))
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)
        pre = open(os.path.join(killed, "results.ndjson"), "rb").read()
        pre = pre[:pre.rfind(b"\n") + 1]  # drop any torn trailing line
        assert 0 < len(pre.splitlines()) < self.N

        # resume: the same ledger completes — already-written lines
        # preserved verbatim, every chain delivered exactly once, each
        # row identical to the uninterrupted run's
        proc, port = self._start(tmp_path, ["--wal", killed, "--resume"])
        run(shutdown_only(port))
        assert proc.wait(timeout=120) == 0
        got = open(os.path.join(killed, "results.ndjson"), "rb").read()
        assert got.startswith(pre)
        rows = [json.loads(l) for l in got.splitlines()]
        assert sorted(r["chain"] for r in rows) == list(range(self.N))
        assert (sorted(rows, key=lambda r: r["chain"])
                == sorted(ref_rows, key=lambda r: r["chain"]))

    def test_resume_requires_wal_dir(self):
        # multi-worker resume is supported since the shm tier (the
        # service.json header restores the shard set); only a missing
        # wal_dir is rejected
        GatherService(wal_dir="x", resume=True, workers=2)
        with pytest.raises(ValueError, match="wal_dir"):
            GatherService(resume=True)
