"""Deterministic chain generators: validity and family properties."""

import pytest

from repro.errors import ChainError
from repro.core.chain import ClosedChain
from repro.core.patterns import find_merge_patterns
from repro.chains import (
    comb,
    crenellation,
    fig16_fragment,
    l_shape,
    needle,
    plus_shape,
    rectangle_ring,
    serpentine_ring,
    spiral,
    square_ring,
    staircase_ring,
    stairway_octagon,
    t_shape,
    zigzag_band,
    FAMILIES,
)

ALL_GENERATORS = [
    pytest.param(lambda: rectangle_ring(8, 5), id="rectangle"),
    pytest.param(lambda: square_ring(7), id="square"),
    pytest.param(lambda: needle(12), id="needle"),
    pytest.param(lambda: comb(3), id="comb"),
    pytest.param(lambda: crenellation(4), id="crenellation"),
    pytest.param(lambda: plus_shape(5, 2), id="plus"),
    pytest.param(lambda: l_shape(10, 8, 3), id="l-shape"),
    pytest.param(lambda: t_shape(11, 9, 3), id="t-shape"),
    pytest.param(lambda: zigzag_band(3), id="zigzag"),
    pytest.param(lambda: spiral(2), id="spiral"),
    pytest.param(lambda: stairway_octagon(5, 2), id="octagon"),
    pytest.param(lambda: staircase_ring(2, band=6), id="staircase"),
    pytest.param(lambda: serpentine_ring(2, 6, 4), id="serpentine"),
]


@pytest.mark.parametrize("gen", ALL_GENERATORS)
def test_generators_yield_valid_initial_chains(gen):
    pts = gen()
    chain = ClosedChain(pts, require_disjoint_neighbors=True)
    assert chain.n == len(pts)
    assert chain.n % 2 == 0


class TestRectangle:
    def test_robot_count(self):
        assert len(rectangle_ring(6, 4)) == 2 * 5 + 2 * 3
        assert len(square_ring(10)) == 36

    def test_rejects_degenerate(self):
        with pytest.raises(ChainError):
            rectangle_ring(1, 5)

    def test_needle_is_two_rows(self):
        pts = needle(15)
        assert {p[1] for p in pts} == {0, 1}


class TestParameterValidation:
    def test_comb_rejects_nonpositive(self):
        with pytest.raises(ChainError):
            comb(0)

    def test_crenellation_bounds(self):
        with pytest.raises(ChainError):
            crenellation(1)

    def test_spiral_pitch(self):
        with pytest.raises(ChainError):
            spiral(1, corridor=3, pitch=3)

    def test_octagon_bounds(self):
        with pytest.raises(ChainError):
            stairway_octagon(2)

    def test_lshape_thickness(self):
        with pytest.raises(ChainError):
            l_shape(3, 5, 3)


class TestMergelessness:
    def test_octagon_is_mergeless(self):
        assert not find_merge_patterns(stairway_octagon(16, 3), 10)

    def test_staircase_is_mergeless(self):
        assert not find_merge_patterns(staircase_ring(2), 10)

    def test_large_rectangle_is_mergeless(self):
        assert not find_merge_patterns(rectangle_ring(20, 14), 10)

    def test_needle_caps_merge(self):
        pats = find_merge_patterns(needle(20), 10)
        assert len(pats) == 2                  # the two end caps
        assert all(p.k == 2 for p in pats)


class TestSerpentine:
    def test_overlapping_non_neighbors(self):
        pts = serpentine_ring(2, 8, 4)
        assert len(pts) != len(set(pts))       # chain overlaps itself

    def test_fig16_fragment_lengths(self):
        frag = fig16_fragment(4, 2, 5)
        assert len(frag) == 1 + 4 + 2 * 2 + 1 + 5


class TestFamilyRegistry:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_registry_produces_chains(self, name):
        pts = FAMILIES[name](48)
        ClosedChain(pts, require_disjoint_neighbors=True)
