"""The zero-copy shared-memory shard tier (DESIGN.md §2.16).

Covers the slab primitives (:class:`FleetSlab` region/ledger views,
:class:`ShmArena` lifecycle with segment-swap growth,
:meth:`ChainArena.adopt_slots` coherence), the shard scheduler's
conformance guarantee — ``backend="shm"`` is bit-identical to
``backend="fleet"`` per external stream index, under mixed sizes,
faults and quarantine — crash recovery (SIGKILLed shard workers
respawn, salvage their published rows and replay the survivors with
identical results, leaking no ``/dev/shm`` segments), and the service
tier's multi-worker resume (the ``service.json`` header restores the
shard set; the results ledger completes exactly-once).
"""

import glob
import json
import os
import random
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chains import square_ring
from repro.core.arena import ChainArena
from repro.core.batch import BatchSimulator, gather_batch
from repro.core.chain import ClosedChain
from repro.core.engine_fleet import FleetKernel
from repro.core.faults import FaultPlan
from repro.core.results import ChainOutcome
from repro.core.shm import FleetSlab, ShmArena, shm_stream
from repro.core.supervisor import KILL_SPEC_ENV
from repro.errors import WorkerCrashError

from tests.test_arena_lifecycle import assert_arena_coherent

SHM_DIR = "/dev/shm"
needs_dev_shm = pytest.mark.skipif(not os.path.isdir(SHM_DIR),
                                   reason="no /dev/shm to scan")


def shm_segments():
    return set(glob.glob(os.path.join(SHM_DIR, "psm_*")))


def mixed_chains(count, invalid_every=0):
    out = []
    for i in range(count):
        if invalid_every and i % invalid_every == invalid_every - 1:
            out.append([(0, 0), (1, 0), (1, 1)])       # odd length: rejected
        else:
            ring = square_ring(3 + i % 4)
            out.append([(x + i, y - i) for x, y in ring])
    return out


def result_key(res):
    if isinstance(res, ChainOutcome):
        return ("outcome", res.index, res.error, res.message, res.stage,
                res.quarantined)
    return (res.gathered, res.stalled, res.rounds, res.initial_n,
            res.final_n, res.final_positions)


def fleet_reference(chains, slots, **kw):
    return dict(FleetKernel([]).run_stream(iter(chains), slots=slots,
                                           release=True, **kw))


# ---------------------------------------------------------------------------
# slab primitives
# ---------------------------------------------------------------------------

class TestFleetSlab:
    def test_regions_disjoint_and_shaped(self):
        slab = FleetSlab(workers=3, cells=32, ring_rows=8)
        try:
            seen = []
            for k in range(3):
                bufs = slab.shard_buffers(k)
                hdr, rows = slab.ledger(k)
                assert bufs["pos"].shape == (33, 2)
                for f in ("codes", "ids", "index", "owner"):
                    assert bufs[f].shape == (32,)
                assert hdr.shape == (4,) and rows.shape == (8, 8)
                bufs["pos"][:] = k
                bufs["codes"][:] = k
                rows[:] = k
                seen.append((bufs, rows))
            # writes to one shard never bleed into another
            for k, (bufs, rows) in enumerate(seen):
                assert (bufs["pos"] == k).all()
                assert (bufs["codes"] == k).all()
                assert (rows == k).all()
        finally:
            slab.close()
            slab.unlink()

    @needs_dev_shm
    def test_attach_sees_creator_writes(self):
        before = shm_segments()
        slab = FleetSlab(workers=2, cells=16, ring_rows=4)
        try:
            slab.shard_buffers(1)["codes"][:] = 7
            other = FleetSlab(workers=2, cells=16, ring_rows=4,
                              name=slab.name)
            assert (other.shard_buffers(1)["codes"] == 7).all()
            other.close()
        finally:
            slab.close()
            slab.unlink()
        assert shm_segments() == before

    def test_adopt_slots_coherent(self):
        slab = FleetSlab(workers=1, cells=128, ring_rows=4)
        try:
            arena = ChainArena([], capacity=128,
                               buffers=slab.shard_buffers(0))
            chains = [ClosedChain([(x + i, y) for x, y in square_ring(3)])
                      for i in range(3)]
            bases, off = [], 0
            for c in chains:
                arr = np.asarray(c.positions_array())
                codes = np.asarray(c.edge_codes())
                arena.pos[off:off + c.n] = arr
                arena.codes[off:off + c.n] = codes
                bases.append(off)
                off += c.n
            cis = arena.adopt_slots(bases, [c.n for c in chains], [0, 0, 0])
            assert len(cis) == 3
            for ci, c, b in zip(cis, chains, bases):
                assert int(arena.base[ci]) == b
                assert arena.chains[ci].positions == c.positions
            assert_arena_coherent(arena)
        finally:
            slab.close()
            slab.unlink()


class TestShmArena:
    def test_grow_swaps_segment_and_preserves_content(self):
        a = ShmArena([square_ring(3)], capacity=16)
        try:
            old_name = a._seg.name
            a.grow(256)
            assert a.span == 256
            assert a._seg.name != old_name
            assert a.chains[0].positions == [tuple(p)
                                             for p in square_ring(3)]
            assert_arena_coherent(a)
        finally:
            a.close()
            a.unlink()

    @needs_dev_shm
    def test_unlink_removes_segment(self):
        before = shm_segments()
        a = ShmArena([square_ring(3)], capacity=16)
        a.grow(64)                     # old segment unlinked by the swap
        a.close()
        a.unlink()
        assert shm_segments() == before

    @settings(deadline=None, max_examples=25)
    @given(st.data())
    def test_random_lifecycle_cycles(self, data):
        """Admit/retire/compact/grow cycles on the shm-backed arena
        keep every structural invariant and every chain view coherent
        with the shared cells — including across segment swaps."""
        rng = random.Random(data.draw(st.integers(0, 2 ** 16)))
        sizes = [6, 8, 10, 14]
        arena = ShmArena([square_ring(rng.choice(sizes))
                          for _ in range(data.draw(st.integers(1, 4)))])
        try:
            live = set(range(len(arena.chains)))
            ops = data.draw(st.lists(
                st.sampled_from(["retire", "admit", "compact", "grow"]),
                min_size=1, max_size=20))
            for op in ops:
                if op == "retire" and live:
                    ci = rng.choice(sorted(live))
                    live.discard(ci)
                    arena.retire(ci)
                elif op == "admit":
                    chain = ClosedChain(square_ring(rng.choice(sizes)))
                    ci = arena.admit(chain)
                    if ci < 0 and arena.free_cells >= chain.n:
                        arena.compact()
                        ci = arena.admit(chain)
                    if ci < 0:
                        arena.grow(arena.span + chain.n)
                        ci = arena.admit(chain)
                    assert ci >= 0
                    live.add(ci)
                elif op == "compact":
                    arena.compact()
                elif op == "grow":
                    arena.grow(arena.span + rng.choice(sizes))
                assert_arena_coherent(arena)
                for ci in sorted(live):
                    b = int(arena.base[ci])
                    n = int(arena.length[ci])
                    assert arena.chains[ci].positions == \
                        [tuple(p) for p in arena.pos[b:b + n].tolist()]
            assert sorted(live) == arena.live_indices().tolist()
        finally:
            arena.close()
            arena.unlink()


# ---------------------------------------------------------------------------
# conformance: shm === fleet per stream index
# ---------------------------------------------------------------------------

class TestShmConformance:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_stream_bit_identical_to_fleet(self, workers):
        chains = mixed_chains(36)
        ref = fleet_reference(chains, slots=12)
        got = dict(shm_stream(iter(chains), workers=workers, slots=12))
        assert set(got) == set(ref)
        for k in ref:
            assert result_key(got[k]) == result_key(ref[k]), f"chain {k}"

    def test_quarantine_and_faults_identical(self):
        chains = mixed_chains(48, invalid_every=9)
        fp = dict(seed=5, crash=0.08, perturb=0.1, mid_crash=0.05,
                  mid_restart=0.05)
        ref = fleet_reference(chains, slots=10, faults=FaultPlan(**fp),
                              on_error="quarantine")
        got = dict(shm_stream(iter(chains), workers=2, slots=10,
                              faults=FaultPlan(**fp),
                              on_error="quarantine"))
        assert set(got) == set(ref)
        for k in ref:
            assert result_key(got[k]) == result_key(ref[k]), f"chain {k}"

    def test_poison_raises_in_strict_mode(self):
        from repro.errors import ChainError
        chains = mixed_chains(12, invalid_every=6)
        with pytest.raises(ChainError):
            list(shm_stream(iter(chains), workers=2, slots=4))

    def test_batch_backend_one_shot(self):
        chains = mixed_chains(20)
        got = BatchSimulator(chains, engine="kernel", backend="shm",
                             workers=2, keep_reports=False).run()
        ref = gather_batch(chains, keep_reports=False)
        assert [result_key(r) for r in got.results] == \
            [result_key(r) for r in ref.results]

    def test_stream_stats_per_shard(self):
        sim = BatchSimulator([], engine="kernel", backend="shm", workers=2,
                             keep_reports=False)
        out = dict(sim.run_stream(iter(mixed_chains(20)), slots=8))
        assert len(out) == 20
        stats = sim.last_stream_stats
        assert stats["workers"] == 2
        shard_rows = stats["per_shard"]
        assert [r["shard"] for r in shard_rows] == [0, 1]
        assert sum(r["completed"] for r in shard_rows) == 20
        assert all(r["chains_per_s"] >= 0 for r in shard_rows)
        assert stats["admitted"] == 20 and stats["respawns"] == 0

    def test_shm_rejects_resume_and_reports(self):
        sim = BatchSimulator([], engine="kernel", backend="shm", workers=2,
                             keep_reports=False)
        with pytest.raises(ValueError, match="resum"):
            list(sim.run_stream((), wal_dir="x", resume=True))
        bad = BatchSimulator([], engine="kernel", backend="shm", workers=2,
                             keep_reports=True)
        with pytest.raises(ValueError, match="keep_reports"):
            list(bad.run_stream(()))
        with pytest.raises(ValueError, match="shard_cells"):
            list(BatchSimulator([], engine="kernel", backend="fleet")
                 .run_stream((), shard_cells=64))

    def test_shm_requires_kernel_engine(self):
        with pytest.raises(ValueError, match="kernel"):
            BatchSimulator([], engine="reference", backend="shm")

    def test_empty_stream(self):
        assert list(shm_stream(iter(()), workers=2, slots=4)) == []


# ---------------------------------------------------------------------------
# crash recovery
# ---------------------------------------------------------------------------

class TestShmCrash:
    @needs_dev_shm
    def test_worker_sigkill_respawns_identical_no_leaks(self, tmp_path,
                                                        monkeypatch):
        before = shm_segments()
        chains = mixed_chains(40)
        cnt = tmp_path / "kills"
        cnt.write_text("2")
        monkeypatch.setenv(KILL_SPEC_ENV, f"{cnt}:9,17")
        stats = {}
        got = dict(shm_stream(iter(chains), workers=2, slots=8,
                              stats=stats))
        monkeypatch.delenv(KILL_SPEC_ENV)
        ref = fleet_reference(chains, slots=8)
        assert set(got) == set(ref)
        for k in ref:
            assert result_key(got[k]) == result_key(ref[k]), f"chain {k}"
        assert stats["respawns"] == 2
        assert shm_segments() == before

    def test_crash_loop_quarantines_shard_residents(self, tmp_path,
                                                    monkeypatch):
        chains = mixed_chains(8)
        cnt = tmp_path / "kills"
        cnt.write_text("-1")           # never disarms: a poison shard
        monkeypatch.setenv(KILL_SPEC_ENV, f"{cnt}:3")
        got = dict(shm_stream(iter(chains), workers=2, slots=4,
                              on_error="quarantine"))
        monkeypatch.delenv(KILL_SPEC_ENV)
        assert set(got) == set(range(8))
        bad = [k for k, r in got.items()
               if isinstance(r, ChainOutcome) and r.quarantined]
        assert 3 in bad
        for k in bad:
            assert got[k].error == "WorkerCrashError"
        for k in set(got) - set(bad):
            assert got[k].gathered

    def test_crash_loop_raises_in_strict_mode(self, tmp_path, monkeypatch):
        chains = mixed_chains(8)
        cnt = tmp_path / "kills"
        cnt.write_text("-1")
        monkeypatch.setenv(KILL_SPEC_ENV, f"{cnt}:3")
        with pytest.raises(WorkerCrashError):
            list(shm_stream(iter(chains), workers=2, slots=4))
        monkeypatch.delenv(KILL_SPEC_ENV)

    @needs_dev_shm
    def test_parent_sigkill_orphans_exit_and_unlink(self, tmp_path):
        """SIGKILLing the *parent* mid-stream must not strand shard
        workers pinning the slab: forked siblings close their
        inherited copies of each other's pipe ends on entry (so EOF
        fires) and the ticket source's parent-death watchdog covers
        the parked case — the workers drain, exit, and the resource
        tracker unlinks the orphaned segment."""
        before = shm_segments()
        script = tmp_path / "runner.py"
        script.write_text(textwrap.dedent("""
            from repro.chains import square_ring
            from repro.core.shm import shm_stream
            chains = [square_ring(12) for _ in range(400)]
            for i, _ in enumerate(shm_stream(iter(chains), workers=2,
                                             slots=4)):
                if i == 0:
                    print("go", flush=True)
        """))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src")
        proc = subprocess.Popen([sys.executable, str(script)],
                                stdout=subprocess.PIPE, text=True, env=env)
        try:
            assert proc.stdout.readline().strip() == "go"
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if shm_segments() <= before:
                break
            time.sleep(0.25)
        assert shm_segments() <= before

    @needs_dev_shm
    def test_abandoned_stream_cleans_up(self):
        before = shm_segments()
        gen = shm_stream(iter(mixed_chains(30)), workers=2, slots=8)
        next(gen)
        gen.close()                     # consumer walks away mid-stream
        assert shm_segments() == before

    def test_per_shard_wals_written(self, tmp_path):
        wal = tmp_path / "wal"
        got = dict(shm_stream(iter(mixed_chains(12)), workers=2, slots=6,
                              wal_dir=str(wal)))
        assert len(got) == 12
        shards = sorted(p.name for p in wal.iterdir())
        assert shards == ["shard-0", "shard-1"]
        for s in shards:
            assert (wal / s / "wal.ndjson").exists()


# ---------------------------------------------------------------------------
# service tier: multi-worker resume + per-shard status
# ---------------------------------------------------------------------------

class TestShmService:
    def _run(self, coro):
        import asyncio
        return asyncio.run(coro)

    def test_service_multiworker_resume_restores_shards(self, tmp_path):
        """A killed --workers K --wal service resumes with its full
        shard set (service.json header) and completes the results
        ledger exactly-once from a genuinely partial state."""
        import asyncio
        from repro.service.server import GatherService
        wal = tmp_path / "svc"
        wal.mkdir()
        chains = mixed_chains(10)
        # forge the crashed run's durable state: all 10 accepted and
        # taken, only 3 results ledgered before the kill
        with open(wal / "submissions.jsonl", "w") as fh:
            for k, pts in enumerate(chains):
                fh.write(json.dumps(
                    {"k": k, "chain": [list(p) for p in pts]}) + "\n")
        with open(wal / "intake.jsonl", "w") as fh:
            for k in range(10):
                fh.write(json.dumps({"k": k}) + "\n")
        ref = fleet_reference(chains, slots=8)
        rows = {k: {"chain": k, "n": ref[k].initial_n,
                    "rounds": ref[k].rounds, "gathered": ref[k].gathered,
                    "rounds_per_robot":
                    round(ref[k].rounds / ref[k].initial_n, 3)}
                for k in range(10)}
        with open(wal / "results.ndjson", "w") as fh:
            for k in range(3):
                fh.write(json.dumps(rows[k], separators=(",", ":")) + "\n")
        with open(wal / "service.json", "w") as fh:
            json.dump({"workers": 2, "slots": 8}, fh)

        async def resume():
            svc = GatherService(slots=8, workers=1, wal_dir=str(wal),
                                resume=True)
            await svc.start()
            try:
                assert svc.workers == 2        # restored from the header
                assert svc.sim.backend == "shm"
            finally:
                # shut down even on assertion failure: an abandoned
                # service wedges asyncio.run() teardown on the kernel
                # executor thread and turns the failure into a hang
                svc.begin_shutdown()
                await asyncio.wait_for(svc.wait_finished(), 60)

        self._run(resume())
        ledger = [json.loads(l) for l in open(wal / "results.ndjson")]
        assert [d["chain"] for d in ledger[:3]] == [0, 1, 2]
        assert sorted(d["chain"] for d in ledger) == list(range(10))
        assert len(ledger) == 10               # exactly-once, no dups
        for d in ledger:
            assert d == rows[d["chain"]]       # bit-identical rows

    def test_status_doc_reports_per_shard(self):
        import asyncio
        from repro.service.server import GatherService

        async def main():
            svc = GatherService(slots=8, workers=2)
            await svc.start()
            try:
                reader, writer = await asyncio.open_connection(svc.host,
                                                               svc.port)
                await reader.readline()        # hello
                for i, pts in enumerate(mixed_chains(6)):
                    writer.write((json.dumps(
                        {"op": "submit", "chain": [list(p) for p in pts],
                         "ack": False}) + "\n").encode())
                await writer.drain()
                got = 0
                while got < 6:
                    doc = json.loads(await asyncio.wait_for(
                        reader.readline(), 60))
                    if doc.get("status") == "result":
                        got += 1
                doc = svc.status_doc()
                assert [r["shard"] for r in doc["per_shard"]] == [0, 1]
                assert sum(r["completed"] for r in doc["per_shard"]) == 6
                assert doc["workers"] == 2
                writer.close()
            finally:
                # shutdown must run even when an assert above fails —
                # otherwise asyncio.run() teardown joins the parked
                # kernel executor thread forever and the failure
                # presents as a suite hang
                svc.begin_shutdown()
                await asyncio.wait_for(svc.wait_finished(), 60)

        self._run(main())
