"""Simulator facade and the gather() convenience API."""

import pytest

from repro.errors import ChainError, StallError
from repro.core.chain import ClosedChain
from repro.core.config import Parameters
from repro.core.simulator import GatheringResult, Simulator, gather
from repro.chains import square_ring


class TestConstruction:
    def test_from_positions(self):
        sim = Simulator(square_ring(8))
        assert sim.chain.n == 28

    def test_from_chain(self):
        sim = Simulator(ClosedChain(square_ring(8)))
        assert sim.initial_n == 28

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            Simulator(square_ring(8), engine="warp")

    def test_initial_validation(self):
        with pytest.raises(ChainError):
            Simulator([(0, 0), (0, 0), (1, 0), (1, 1), (0, 1), (0, 1)])

    def test_validation_can_be_skipped(self):
        pts = [(0, 0), (0, 0), (1, 0), (1, 1), (0, 1), (0, 1)]
        sim = Simulator(pts, validate_initial=False)
        assert sim.chain.n == 6


class TestRun:
    def test_gathers_and_reports(self):
        result = gather(square_ring(12), check_invariants=True)
        assert result.gathered and not result.stalled
        assert result.initial_n == 44
        assert result.final_n <= 4
        assert result.total_merges == result.initial_n - result.final_n
        assert result.rounds == len(result.reports)
        assert 0 < result.rounds_per_robot < 27
        assert "gathered" in result.summary()

    def test_budget_exhaustion_reports_stall(self):
        result = gather(square_ring(20), max_rounds=3)
        assert result.stalled and not result.gathered
        assert result.rounds == 3

    def test_raise_on_stall(self):
        with pytest.raises(StallError) as exc:
            gather(square_ring(20), max_rounds=3, raise_on_stall=True)
        assert exc.value.n > 4
        assert exc.value.positions

    def test_trace_recording(self):
        result = gather(square_ring(8), record_trace=True)
        assert result.trace is not None
        assert result.trace.rounds == result.rounds
        assert result.trace.merge_rounds()
        assert result.trace.chain_lengths()[-1] == result.final_n

    def test_step_by_step_matches_run(self):
        a = Simulator(square_ring(12))
        while not a.is_gathered():
            a.step()
        b = gather(square_ring(12))
        assert a.round_index == b.rounds

    def test_default_budget_is_linear(self):
        params = Parameters()
        assert params.round_budget(100) < 30 * 100 + 1000

    def test_already_gathered_chain(self):
        result = gather([(0, 0), (1, 0), (1, 1), (0, 1)],
                        check_invariants=True)
        assert result.gathered and result.rounds == 0


class TestResultMetrics:
    def test_wall_time_recorded(self):
        result = gather(square_ring(8))
        assert result.wall_time >= 0.0

    def test_rounds_per_robot(self):
        r = GatheringResult(gathered=True, rounds=50, initial_n=100,
                            final_n=4, final_positions=[],
                            params=Parameters())
        assert r.rounds_per_robot == 0.5
