"""The supervision tier (DESIGN.md §2.13): crash recovery + quarantine.

Worker kills, poison chains, mid-run robot faults and intake
corruption must never abort a supervised stream, and the surviving
good chains must be *bit-identical* (wall time excepted) to an
unfaulted run — property-tested here with real SIGKILLed pool workers
via the REPRO_KILL_SPEC hook.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.chains import random_chain, square_ring
from repro.core.engine_fleet import FleetKernel
from repro.core.faults import FaultPlan
from repro.core.results import ChainOutcome
from repro.core.supervisor import (
    KILL_SPEC_ENV,
    DeadLetterWriter,
    StreamSupervisor,
    pool_stream,
    supervise_stream,
)
from repro.errors import (
    InvariantViolation,
    QuarantinedChainError,
    WorkerCrashError,
)
from repro.io.serialization import result_to_json

import random


def canon(result) -> str:
    """Serialized result with the one nondeterministic field zeroed."""
    doc = json.loads(result_to_json(result))
    doc["wall_time"] = 0.0
    return json.dumps(doc, sort_keys=True)


def ring_stream(count, seed=7):
    rng = random.Random(seed)
    return [random_chain(rng.choice([8, 12, 16]), rng=rng)
            for _ in range(count)]


POISON = [(0, 0), (1, 0)]          # fails closed-chain validation


@pytest.fixture
def baseline():
    chains = ring_stream(24)
    ref = {o.index: canon(o.result)
           for o in StreamSupervisor(slots=6).run(chains)}
    return chains, ref


class TestChainOutcome:
    def test_ok_unwrap_roundtrip(self):
        from repro.core.simulator import gather
        res = gather(square_ring(8))
        out = ChainOutcome(index=3, result=res)
        assert out.ok and out.unwrap() is res
        doc = out.to_doc()
        assert doc["chain"] == 3 and not doc["quarantined"]

    def test_error_unwrap_raises(self):
        out = ChainOutcome(index=9, error="ChainError", message="bad",
                           stage="admit", quarantined=True)
        assert not out.ok
        with pytest.raises(QuarantinedChainError) as exc:
            out.unwrap()
        assert exc.value.index == 9
        back = ChainOutcome.from_doc(out.to_doc())
        assert back.error == "ChainError" and back.stage == "admit"


class TestQuarantineInProcess:
    def test_poison_admission_quarantined(self, tmp_path, baseline):
        chains, ref = baseline
        dl = tmp_path / "dead.ndjson"
        sup = StreamSupervisor(slots=6, dead_letter=str(dl))
        outs = {o.index: o for o in
                sup.run(chains[:10] + [POISON] + chains[10:])}
        assert len(outs) == len(chains) + 1
        bad = outs[10]
        assert bad.quarantined and bad.error == "ChainError" \
            and bad.stage == "admit"
        # the dead letter carries the same structured record
        docs = [json.loads(line) for line in dl.read_text().splitlines()]
        assert docs == [bad.to_doc()]
        assert sup.stats["quarantined_total"] == 1
        # survivors shift by one stream position past the poison entry
        for i, o in outs.items():
            if o.ok:
                assert canon(o.result) == ref[i if i < 10 else i - 1]

    def test_strict_mode_still_raises(self):
        from repro.errors import ChainError
        fleet = FleetKernel([])
        with pytest.raises(ChainError):
            list(fleet.run_stream([POISON], slots=2))

    def test_invariant_violation_quarantined(self, monkeypatch, baseline):
        chains, ref = baseline
        real = FleetKernel._check_invariants
        tripped = []

        def boom(self, *args, **kwargs):
            if self.round_index == 3 and not tripped:
                tripped.append(True)
                exc = InvariantViolation("planted violation")
                exc.chain_index = int(self.arena.live_indices()[0])
                raise exc
            return real(self, *args, **kwargs)

        monkeypatch.setattr(FleetKernel, "_check_invariants", boom)
        sup = StreamSupervisor(slots=6, check_invariants=True)
        outs = {o.index: o for o in sup.run(chains)}
        bad = [o for o in outs.values() if not o.ok]
        assert len(bad) == 1 and bad[0].error == "InvariantViolation" \
            and bad[0].stage == "round"
        for i, o in outs.items():
            if o.ok:
                assert canon(o.result) == ref[i]

    def test_dead_letter_accumulates(self, tmp_path):
        dl = DeadLetterWriter(str(tmp_path / "dl.ndjson"))
        dl.write({"kind": "bad-line", "line": 4, "error": "x", "raw": "!"})
        dl.write_outcome(ChainOutcome(index=1, error="E", quarantined=True))
        dl.close()
        dl2 = DeadLetterWriter(str(tmp_path / "dl.ndjson"))
        dl2.write({"kind": "bad-line", "line": 9, "error": "y", "raw": "?"})
        dl2.close()
        lines = (tmp_path / "dl.ndjson").read_text().splitlines()
        assert len(lines) == 3 and json.loads(lines[0])["line"] == 4


class TestMidRunFaults:
    def test_decide_mid_deterministic_and_windowed(self):
        plan = FaultPlan(seed=3, mid_crash=0.2, mid_restart=0.3, window=5)
        fates = [plan.decide_mid(i) for i in range(200)]
        assert fates == [plan.decide_mid(i) for i in range(200)]
        kinds = {f[0] for f in fates if f}
        assert kinds == {"mid_crash", "mid_restart"}
        assert all(1 <= f[1] <= 5 for f in fates if f)

    def test_mid_crash_quarantines_mid_restart_degrades(self, baseline):
        chains, ref = baseline
        plan = FaultPlan(seed=10, mid_crash=0.15, mid_restart=0.15, window=4)
        sup = StreamSupervisor(slots=6, faults=plan)
        outs = {o.index: o for o in sup.run(chains)}
        crashed = {i for i, o in outs.items() if o.error == "FaultCrash"}
        # a fault only fires while its chain is still running: a chain
        # that gathers before the trigger round retires untouched
        expect_crash = set()
        for i in range(len(chains)):
            kind, trig = plan.decide_mid(i) or ("", 0)
            if kind == "mid_crash" and trig < json.loads(ref[i])["rounds"]:
                expect_crash.add(i)
        assert crashed == expect_crash
        assert sup.stats["mid_crashed"] == len(crashed)
        assert sup.stats["mid_restarted"] > 0
        # restarted chains still finish (their rounds differ from ref)
        assert all(o.ok for i, o in outs.items() if i not in crashed)
        # untouched chains stay bit-identical
        for i, o in outs.items():
            if o.ok and plan.decide_mid(i) is None:
                assert canon(o.result) == ref[i]

    def test_mid_faults_identical_across_pool(self, baseline):
        chains, _ = baseline
        plan = FaultPlan(seed=5, mid_crash=0.1, mid_restart=0.2, window=4)
        solo = {o.index: (o.error, o.ok and canon(o.result))
                for o in StreamSupervisor(slots=6, faults=plan).run(chains)}
        pooled = {o.index: (o.error, o.ok and canon(o.result))
                  for o in StreamSupervisor(slots=6, workers=2,
                                            faults=plan).run(chains)}
        assert solo == pooled


class TestSupervisedPool:
    def _arm(self, tmp_path, count, *indices):
        counter = tmp_path / "kills"
        counter.write_text(str(count))
        os.environ[KILL_SPEC_ENV] = \
            f"{counter}:{','.join(str(i) for i in indices)}"

    def teardown_method(self, method):
        os.environ.pop(KILL_SPEC_ENV, None)

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10),
           kills=st.integers(min_value=1, max_value=2))
    def test_worker_kills_bit_identical(self, seed, kills):
        import pathlib
        import tempfile
        chains = ring_stream(16, seed=seed)
        ref = {o.index: canon(o.result)
               for o in StreamSupervisor(slots=8).run(chains)}
        target = seed % len(chains)
        tmp = pathlib.Path(tempfile.mkdtemp(prefix="sup-kill-"))
        self._arm(tmp, kills, target)
        try:
            sup = StreamSupervisor(slots=8, workers=2, backoff=0.01,
                                   wal_dir=str(tmp / "wal"))
            outs = {o.index: o for o in sup.run(chains)}
        finally:
            os.environ.pop(KILL_SPEC_ENV, None)
        assert sup.stats["worker_crashes"] >= 1   # the hook really fired
        assert sorted(outs) == list(range(len(chains)))
        assert all(o.ok for o in outs.values())
        assert {i: canon(o.result) for i, o in outs.items()} == ref

    def test_poison_worker_isolated_then_quarantined(self, tmp_path):
        chains = ring_stream(12)
        ref = {o.index: canon(o.result)
               for o in StreamSupervisor(slots=4).run(chains)}
        self._arm(tmp_path, -1, 5)                # never disarms
        sup = StreamSupervisor(slots=4, workers=2, max_retries=1,
                               backoff=0.01)
        outs = {o.index: o for o in sup.run(chains)}
        bad = {i for i, o in outs.items() if not o.ok}
        assert bad == {5}
        assert outs[5].error == "WorkerCrashError" \
            and outs[5].stage == "worker"
        assert sup.stats["quarantined_worker"] == 1
        for i, o in outs.items():
            if o.ok:
                assert canon(o.result) == ref[i]

    def test_raise_mode_surfaces_worker_crash(self, tmp_path):
        chains = ring_stream(8)
        self._arm(tmp_path, -1, 3)
        with pytest.raises(WorkerCrashError) as exc:
            list(pool_stream(chains, workers=2, slots=4, max_retries=0,
                             backoff=0.01))
        assert 3 in exc.value.indices

    def test_pool_poison_chain_quarantined(self, tmp_path, baseline):
        chains, ref = baseline
        dl = tmp_path / "dead.ndjson"
        outs = {o.index: o for o in supervise_stream(
            chains[:6] + [POISON] + chains[6:], slots=8, workers=2,
            dead_letter=str(dl))}
        assert not outs[6].ok and outs[6].stage == "admit"
        assert len([o for o in outs.values() if o.ok]) == len(chains)
        docs = [json.loads(line) for line in dl.read_text().splitlines()]
        assert docs[0]["chain"] == 6


class TestShardedWalRestrictions:
    def test_pool_wal_with_reports_rejected(self):
        from repro.core.batch import BatchSimulator
        sim = BatchSimulator([], engine="kernel", workers=2,
                             keep_reports=True, backend="fleet")
        with pytest.raises(ValueError):
            list(sim.run_stream(ring_stream(2), slots=2, wal_dir="/tmp/x"))

    def test_top_level_resume_single_process_only(self):
        from repro.core.batch import BatchSimulator
        sim = BatchSimulator([], engine="kernel", workers=2,
                             backend="fleet")
        with pytest.raises(ValueError):
            list(sim.run_stream(ring_stream(2), slots=2, wal_dir="/tmp/x",
                                resume=True))

    def test_shard_dirs_created_per_worker(self, tmp_path):
        wal = tmp_path / "wal"
        outs = {o.index: o for o in supervise_stream(
            ring_stream(10), slots=4, workers=2, wal_dir=str(wal))}
        assert len(outs) == 10 and all(o.ok for o in outs.values())
        shards = sorted(p.name for p in wal.iterdir())
        assert shards == ["shard-0", "shard-1"]
        assert (wal / "shard-0" / "results.ndjson").exists()
