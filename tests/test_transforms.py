"""The dihedral group D4: group laws and canonical forms."""

from hypothesis import given, strategies as st

from repro.grid.transforms import (
    DIHEDRAL_GROUP,
    IDENTITY,
    ROT90,
    ROT180,
    canonical_form,
    reflections,
    rotations,
)

from tests.conftest import small_vectors


class TestGroupStructure:
    def test_eight_distinct_elements(self):
        matrices = {(t.a, t.b, t.c, t.d) for t in DIHEDRAL_GROUP}
        assert len(matrices) == 8

    def test_closure(self):
        matrices = {(t.a, t.b, t.c, t.d) for t in DIHEDRAL_GROUP}
        for s in DIHEDRAL_GROUP:
            for t in DIHEDRAL_GROUP:
                c = s.compose(t)
                assert (c.a, c.b, c.c, c.d) in matrices

    def test_inverses(self):
        for t in DIHEDRAL_GROUP:
            inv = t.inverse()
            comp = t.compose(inv)
            assert (comp.a, comp.b, comp.c, comp.d) == (1, 0, 0, 1)

    def test_determinants(self):
        assert all(t.determinant == 1 for t in rotations())
        assert all(t.determinant == -1 for t in reflections())

    def test_rot90_order_four(self):
        t = ROT90
        for _ in range(3):
            t = t.compose(ROT90)
        assert (t.a, t.b, t.c, t.d) == (1, 0, 0, 1)

    def test_apply_examples(self):
        assert ROT90.apply((1, 0)) == (0, 1)
        assert ROT180.apply((2, 3)) == (-2, -3)
        assert IDENTITY.apply((5, -1)) == (5, -1)


class TestCanonicalForm:
    @given(st.lists(small_vectors(10), min_size=1, max_size=8))
    def test_invariant_under_group(self, vs):
        base = canonical_form(vs)
        for t in DIHEDRAL_GROUP:
            assert canonical_form(t.apply_all(vs)) == base

    @given(st.lists(small_vectors(10), min_size=1, max_size=8))
    def test_is_an_orbit_member(self, vs):
        orbit = {tuple(t.apply_all(vs)) for t in DIHEDRAL_GROUP}
        assert canonical_form(vs) in orbit

    def test_apply_all_length(self):
        assert len(ROT90.apply_all([(1, 2), (3, 4)])) == 2
