"""Exhaustive small-case enumeration and verification."""

import pytest
from hypothesis import given, strategies as st

from repro.core.chain import ClosedChain
from repro.verification import (
    canonical_signature,
    closed_edge_sequences,
    count_closed_chains,
    enumerate_closed_chains,
    verify_all,
)


class TestEnumeration:
    def test_no_odd_or_tiny_lengths(self):
        assert list(closed_edge_sequences(3)) == []
        assert list(closed_edge_sequences(5)) == []
        assert list(closed_edge_sequences(2)) == []

    def test_raw_count_matches_combinatorics(self):
        # closed walks of length 2k on Z^2 number C(2k,k)^2; fixing the
        # first step east divides by 4
        raw = sum(1 for _ in closed_edge_sequences(6))
        assert raw == (20 * 20) // 4            # C(6,3)^2 / 4 = 100

    def test_walks_close(self):
        for codes in closed_edge_sequences(6):
            x = y = 0
            for c in codes:
                dx, dy = ((1, 0), (0, 1), (-1, 0), (0, -1))[c]
                x += dx
                y += dy
            assert (x, y) == (0, 0)

    def test_canonical_class_counts(self):
        assert count_closed_chains(4) == 4
        assert count_closed_chains(6) == 11
        assert count_closed_chains(8) == 71

    def test_enumerated_chains_are_valid(self):
        for pts in enumerate_closed_chains(8):
            chain = ClosedChain(pts, require_disjoint_neighbors=True)
            assert chain.n == 8

    def test_dedup_reduces(self):
        raw = sum(1 for _ in enumerate_closed_chains(8, dedup=False))
        canonical = count_closed_chains(8)
        assert canonical < raw


class TestCanonicalSignature:
    def test_invariant_under_rotation_of_sequence(self):
        codes = (0, 0, 1, 2, 2, 3)
        for shift in range(6):
            rotated = codes[shift:] + codes[:shift]
            assert canonical_signature(rotated) == canonical_signature(codes)

    def test_invariant_under_reversal(self):
        codes = (0, 0, 1, 2, 2, 3)
        rev = tuple((c + 2) % 4 for c in reversed(codes))
        assert canonical_signature(rev) == canonical_signature(codes)

    def test_invariant_under_dihedral_maps(self):
        codes = (0, 1, 0, 1, 2, 3, 2, 3)
        image = tuple((c + 1) % 4 for c in codes)     # rotate 90°
        assert canonical_signature(image) == canonical_signature(codes)


class TestVerification:
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_exhaustive_small(self, n):
        report = verify_all(n)
        assert report.complete, f"failures: {report.failures[:3]}"

    def test_n10_exhaustive(self):
        report = verify_all(10, engine="vectorized")
        assert report.complete, f"failures: {report.failures[:3]}"
        assert report.total == 478

    def test_limit_sampling(self):
        report = verify_all(12, limit=50, engine="vectorized")
        assert report.total == 50
        assert report.gathered == 50

    def test_oscillator_regression(self):
        """The degenerate doubled-flat chains found by the sweep.

        These oscillated forever before the short-pattern priority rule
        (DESIGN.md §2.2); pin them as regressions.
        """
        from repro.core.simulator import gather
        oscillators = [
            [(0, 0), (1, 0), (2, 0), (2, 1), (2, 0), (1, 0), (0, 0), (0, 1)],
            [(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (2, 1), (2, 0), (1, 0),
             (0, 0), (0, 1)],
            [(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (3, 0), (2, 0), (1, 0),
             (0, 0), (0, 1)],
        ]
        for pts in oscillators:
            result = gather(list(pts), check_invariants=True)
            assert result.gathered, f"oscillator regressed: {pts}"
