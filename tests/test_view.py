"""ChainWindow: the locality-enforcing view layer."""

import pytest

from repro.errors import LocalityViolation
from repro.core.chain import ClosedChain
from repro.core.runs import RunRegistry
from repro.core.view import ChainWindow
from repro.chains import square_ring


@pytest.fixture
def chain():
    return ClosedChain(square_ring(10))


class TestLocality:
    def test_within_range_ok(self, chain):
        w = ChainWindow(chain, 0, 11)
        assert w.rel(0) == (0, 0)
        w.pos(11)
        w.pos(-11)

    def test_beyond_range_raises(self, chain):
        w = ChainWindow(chain, 0, 11)
        with pytest.raises(LocalityViolation):
            w.pos(12)
        with pytest.raises(LocalityViolation):
            w.rel(-12)
        with pytest.raises(LocalityViolation):
            w.edge(11, 1)                     # far endpoint out of range

    def test_limit_property(self, chain):
        assert ChainWindow(chain, 0, 7).limit == 7


class TestGeometry:
    def test_rel_is_relative(self, chain):
        w = ChainWindow(chain, 3, 11)
        anchor = chain.position(3)
        nxt = chain.position(4)
        assert w.rel(1) == (nxt[0] - anchor[0], nxt[1] - anchor[1])

    def test_edge_directions(self, chain):
        w = ChainWindow(chain, 0, 11)
        assert w.edge(0, 1) == (1, 0)          # bottom side heads east
        assert w.edge(0, -1) == (0, 1)         # behind the corner: up the side

    def test_ahead_edges(self, chain):
        w = ChainWindow(chain, 0, 11)
        edges = w.ahead_edges(1, 5)
        assert edges == [(1, 0)] * 5

    def test_wraps_detection(self):
        small = ClosedChain(square_ring(3))    # n = 8 robots
        assert ChainWindow(small, 0, 11).wraps()
        big = ClosedChain(square_ring(30))
        assert not ChainWindow(big, 0, 11).wraps()


class TestRunVisibility:
    def test_run_directions_at(self, chain):
        registry = RunRegistry()
        rid = chain.id_at(2)
        registry.start(rid, 1, (1, 0), 0)
        w = ChainWindow(chain, 0, 11, registry.runs_lookup())
        assert w.run_directions_at(2) == (1,)
        assert w.run_directions_at(3) == ()

    def test_without_registry_empty(self, chain):
        w = ChainWindow(chain, 0, 11)
        assert w.run_directions_at(1) == ()

    def test_id_at(self, chain):
        w = ChainWindow(chain, 5, 11)
        assert w.id_at(0) == chain.id_at(5)
        assert w.id_at(-2) == chain.id_at(3)
