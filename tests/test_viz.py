"""Renderers: ASCII grids, SVG documents, animation frames."""

import os
import xml.etree.ElementTree as ET

import pytest

from repro.core.simulator import Simulator
from repro.chains import square_ring
from repro.viz import (
    render_ascii,
    render_rounds,
    render_svg,
    render_trace_strip,
    save_frames,
    save_svg,
    trace_frames,
)
from repro.viz.ascii_render import render_snapshot


@pytest.fixture
def traced_sim():
    sim = Simulator(square_ring(8), record_trace=True)
    sim.run()
    return sim


class TestAscii:
    def test_single_robot(self):
        assert render_ascii([(0, 0)]) == "1"

    def test_multiplicity(self):
        out = render_ascii([(0, 0), (0, 0), (1, 0)])
        assert out == "21"

    def test_ten_plus_renders_plus(self):
        out = render_ascii([(0, 0)] * 12)
        assert out == "+"

    def test_y_axis_points_up(self):
        out = render_ascii([(0, 0), (0, 2)])
        rows = out.splitlines()
        assert rows[0][0] == "1" and rows[2][0] == "1" and rows[1][0] == "·"

    def test_runner_markers(self):
        out = render_ascii([(0, 0), (1, 0)], runners={(0, 0): 1, (1, 0): -1})
        assert out == "><"

    def test_empty(self):
        assert "empty" in render_ascii([])

    def test_render_rounds_side_by_side(self):
        merged = render_rounds(["ab\ncd", "x"], labels=["L", "R"])
        lines = merged.splitlines()
        assert len(lines) == 3                # label + two rows
        assert "L" in lines[0] and "R" in lines[0]

    def test_trace_strip(self, traced_sim):
        strip = render_trace_strip(traced_sim.trace.snapshots, max_frames=3)
        assert "round 0" in strip

    def test_render_snapshot_shows_runners(self):
        sim = Simulator(square_ring(16), record_trace=True)
        sim.step()
        sim.step()
        snap = sim.engine.snapshot()
        if snap.runs:
            out = render_snapshot(snap)
            assert (">" in out) or ("<" in out)


class TestSvg:
    def test_well_formed_xml(self):
        svg = render_svg(square_ring(6), title="test & escape")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_robot_and_edge_counts(self):
        pts = square_ring(5)
        svg = render_svg(pts)
        assert svg.count("<circle") == len(set(pts))
        assert svg.count("<line") == len(pts)

    def test_runner_arrows(self):
        svg = render_svg([(0, 0), (1, 0), (1, 1), (0, 1)],
                         runners={(0, 0): 1})
        assert "#8594" in svg                  # right arrow entity

    def test_coincident_annotation(self):
        svg = render_svg([(0, 0), (0, 0), (1, 0), (1, 0)], closed=True)
        assert "<text" in svg

    def test_save(self, tmp_path):
        path = save_svg(str(tmp_path / "chain.svg"), square_ring(4))
        assert os.path.exists(path)

    def test_empty_chain(self):
        assert "<svg" in render_svg([])


class TestAnimation:
    def test_trace_frames_ascii(self, traced_sim):
        frames = trace_frames(traced_sim.trace, fmt="ascii")
        assert len(frames) == traced_sim.trace.rounds

    def test_trace_frames_svg(self, traced_sim):
        frames = trace_frames(traced_sim.trace, every=2, fmt="svg")
        assert all(f.startswith("<svg") for f in frames)

    def test_unknown_format(self, traced_sim):
        with pytest.raises(ValueError):
            trace_frames(traced_sim.trace, fmt="gif")

    def test_save_frames(self, traced_sim, tmp_path):
        paths = save_frames(traced_sim.trace, str(tmp_path), every=2)
        assert paths and all(os.path.exists(p) for p in paths)
        assert paths[0].endswith("round_00000.svg")
