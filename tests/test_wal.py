"""WAL record, snapshot and version-machinery round-trips (DESIGN.md §2.12).

Property-based round-trips for every WAL record type the streaming
tier emits, bit-identical arena/registry snapshot restoration, torn
and corrupt log handling, the versioned-document validation shared by
all JSON formats, and the deterministic fault plan.
"""

import json
import random
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chains import random_chain, square_ring
from repro.core.arena import ChainArena
from repro.core.engine_fleet import FleetKernel
from repro.core.faults import FaultPlan
from repro.core.runs import RunRegistry
from repro.core.simulator import Simulator
from repro.errors import ChainError, WalError
from repro.io import (
    WalReader,
    WalWriter,
    load_fleet_snapshot,
    result_from_json,
    result_to_json,
    save_fleet_snapshot,
    validate_document,
)
from repro.io.wal import pack_ints, unpack_ints
from repro.io.serialization import (
    SUPPORTED_VERSIONS,
    register_migration,
    unregister_migration,
)


ints = st.integers(min_value=0, max_value=2**40)
small = st.integers(min_value=0, max_value=10**6)
flat = st.lists(st.integers(min_value=-1000, max_value=1000), max_size=24)

# One strategy per WAL record type, matching the fields the engine emits.
RECORDS = st.one_of(
    st.fixed_dictionaries({"type": st.just("stream_start"),
                           "slots": small, "snapshot_every": small,
                           "release": st.booleans()}),
    st.fixed_dictionaries({"type": st.just("admit"), "i": small,
                           "row": small, "n": small, "cursor": small}),
    st.fixed_dictionaries({"type": st.just("fault"), "i": small,
                           "kind": st.sampled_from(["crash", "perturb"])}),
    st.fixed_dictionaries({"type": st.just("round"), "r": small,
                           "mv": flat, "rm": flat, "st": flat, "tm": flat}),
    st.fixed_dictionaries({"type": st.just("retire"), "r": small,
                           "c": flat, "i": flat, "g": flat}),
    st.fixed_dictionaries({"type": st.just("yield"), "i": small}),
    st.fixed_dictionaries({"type": st.just("snapshot"),
                           "file": st.just("snapshot-0000000000.npz"),
                           "r": small, "cursor": small, "done": small,
                           "exhausted": st.booleans()}),
    st.fixed_dictionaries({"type": st.just("resume"),
                           "snapshot_lsn": small, "r": small}),
    st.fixed_dictionaries({"type": st.just("stream_end"), "r": small,
                           "done": small}),
)


class TestWalRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(RECORDS, min_size=1, max_size=12))
    def test_every_record_type_round_trips(self, docs):
        with tempfile.TemporaryDirectory() as wal_dir:
            self._round_trip(wal_dir, docs)

    @staticmethod
    def _round_trip(wal_dir, docs):
        writer = WalWriter(wal_dir)
        for doc in docs:
            fields = {k: v for k, v in doc.items() if k != "type"}
            writer.append(doc["type"], **fields)
        writer.close()
        recs = WalReader(wal_dir).records()
        assert len(recs) == len(docs)
        for lsn, (rec, doc) in enumerate(zip(recs, docs)):
            assert rec["lsn"] == lsn
            assert rec["format"] == "repro.wal"
            assert rec["version"] == 1
            for key, val in doc.items():
                assert rec[key] == val

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=-2**31, max_value=2**31 - 1)))
    def test_packed_ints_round_trip(self, values):
        blob = pack_ints(values)
        assert unpack_ints(blob).tolist() == values
        # int16-ranged payloads take the narrow encoding
        if values and all(-32768 <= v <= 32767 for v in values):
            assert blob[0] == "h"

    def test_packed_ints_rejects_untagged(self):
        with pytest.raises(WalError):
            unpack_ints("")
        with pytest.raises(WalError):
            unpack_ints("AAAA")

    def test_numpy_scalars_serialize(self, tmp_path):
        writer = WalWriter(str(tmp_path))
        writer.append("yield", i=np.int64(3), f=np.float64(0.5),
                      b=np.bool_(True))
        writer.close()
        rec = WalReader(str(tmp_path)).records()[0]
        assert rec["i"] == 3 and rec["f"] == 0.5 and rec["b"] is True

    def test_torn_trailing_line_tolerated(self, tmp_path):
        writer = WalWriter(str(tmp_path))
        writer.append("stream_start", slots=4)
        writer.append("yield", i=0)
        writer.close()
        log = tmp_path / "wal.ndjson"
        with open(log, "ab") as fh:
            fh.write(b'{"lsn": 2, "type": "yi')   # crash mid-write
        reader = WalReader(str(tmp_path))
        assert len(reader.records()) == 2
        writer = reader.continue_writing()        # truncates the torn tail
        lsn = writer.append("yield", i=1)
        writer.close()
        assert lsn == 2
        assert len(WalReader(str(tmp_path)).records()) == 3

    def test_lsn_break_rejected(self, tmp_path):
        writer = WalWriter(str(tmp_path))
        writer.append("stream_start", slots=4)
        writer.close()
        with open(tmp_path / "wal.ndjson", "a") as fh:
            fh.write(json.dumps({"lsn": 5, "format": "repro.wal",
                                 "version": 1, "type": "yield", "i": 0})
                     + "\n")
        with pytest.raises(WalError):
            WalReader(str(tmp_path)).records()

    def test_corrupt_complete_line_rejected(self, tmp_path):
        writer = WalWriter(str(tmp_path))
        writer.append("stream_start", slots=4)
        writer.close()
        with open(tmp_path / "wal.ndjson", "a") as fh:
            fh.write("not json at all\n")
        with pytest.raises(WalError):
            WalReader(str(tmp_path)).records()

    def test_unknown_record_version_rejected(self, tmp_path):
        with open(tmp_path / "wal.ndjson", "w") as fh:
            fh.write(json.dumps({"lsn": 0, "format": "repro.wal",
                                 "version": 99, "type": "stream_start"})
                     + "\n")
        with pytest.raises(ChainError):
            WalReader(str(tmp_path)).records()

    def test_existing_log_not_clobbered(self, tmp_path):
        WalWriter(str(tmp_path)).append("stream_start", slots=4)
        with pytest.raises(WalError):
            WalWriter(str(tmp_path))

    def test_missing_log_rejected(self, tmp_path):
        with pytest.raises(WalError):
            WalReader(str(tmp_path)).records()

    def test_yields_after(self, tmp_path):
        writer = WalWriter(str(tmp_path))
        writer.append("stream_start", slots=4)
        writer.append("yield", i=7)            # scalar and batched forms
        cut = writer.append("yield", i=[8])
        writer.append("yield", i=[9, 10])
        writer.close()
        reader = WalReader(str(tmp_path))
        assert reader.yields_after(cut) == {9, 10}
        assert reader.yields_after(0) == {7, 8, 9, 10}


def _stepped_kernel(seed=0, rounds=6, n_chains=5):
    rng = random.Random(seed)
    pts = [random_chain(rng.choice([8, 12, 16]), rng) for _ in range(n_chains)]
    kernel = FleetKernel(pts, keep_reports=True)
    for _ in range(rounds):
        kernel._step_round()
        kernel.round_index += 1
    return kernel


class TestSnapshotRoundTrip:
    def test_arena_buffers_bit_identical(self):
        arena = _stepped_kernel().arena
        arrays, meta = arena.snapshot_state()
        restored = ChainArena.restore_state(arrays, meta)
        span = int(np.sum(arrays["length"]))
        np.testing.assert_array_equal(restored.pos[:span], arena.pos[:span])
        np.testing.assert_array_equal(restored.codes, arena.codes)
        np.testing.assert_array_equal(restored.ids, arena.ids)
        np.testing.assert_array_equal(restored.index, arena.index)
        np.testing.assert_array_equal(restored.owner, arena.owner)
        np.testing.assert_array_equal(restored.base, arena.base)
        np.testing.assert_array_equal(restored.length, arena.length)
        np.testing.assert_array_equal(restored.live, arena.live)
        assert restored.free == arena.free

    def test_arena_restore_does_not_alias(self):
        arena = _stepped_kernel().arena
        arrays, meta = arena.snapshot_state()
        restored = ChainArena.restore_state(arrays, meta)
        before = restored.codes.copy()
        arena.codes[:] = -1
        np.testing.assert_array_equal(restored.codes, before)

    def test_revived_chains_match(self):
        arena = _stepped_kernel().arena
        arrays, meta = arena.snapshot_state()
        restored = ChainArena.restore_state(arrays, meta)
        # compare against the arena arrays (the ground truth the
        # snapshot preserves), not the possibly-stale chain proxies
        for ci in np.flatnonzero(arena.live):
            b, n = int(arena.base[ci]), int(arena.length[ci])
            chain = restored.revive_chain(int(ci))
            assert len(chain) == n
            np.testing.assert_array_equal(chain.positions_array(),
                                          arena.pos[b:b + n])
            assert chain.ids == arena.ids[b:b + n].tolist()

    def test_registry_round_trip(self):
        reg = _stepped_kernel().registry
        arrays, meta = reg.snapshot_state()
        restored = RunRegistry.restore_state(arrays, meta)
        np.testing.assert_array_equal(restored._data[:restored._count],
                                      reg._data[:reg._count])
        assert restored._active == reg._active
        assert restored.keep_stopped == reg.keep_stopped

    def test_fleet_snapshot_file_round_trip(self, tmp_path):
        kernel = _stepped_kernel(seed=3, rounds=4)
        stream = {"consumed": 5, "done": 0, "exhausted": False,
                  "slots": 8, "max_rounds": None, "release": False,
                  "snapshot_every": 16}
        path = str(tmp_path / "snap.npz")
        save_fleet_snapshot(path, kernel, stream)
        restored, stream2 = load_fleet_snapshot(path)
        assert stream2 == stream
        assert restored.round_index == kernel.round_index
        np.testing.assert_array_equal(restored.arena.codes,
                                      kernel.arena.codes)
        np.testing.assert_array_equal(
            restored.registry._data[:restored.registry._count],
            kernel.registry._data[:kernel.registry._count])
        # restored kernel steps identically to the original
        for _ in range(3):
            kernel._step_round()
            kernel.round_index += 1
            restored._step_round()
            restored.round_index += 1
        np.testing.assert_array_equal(restored.arena.codes,
                                      kernel.arena.codes)
        np.testing.assert_array_equal(restored.arena.length,
                                      kernel.arena.length)

    def test_unknown_snapshot_version_rejected(self, tmp_path):
        kernel = _stepped_kernel(rounds=1, n_chains=2)
        path = str(tmp_path / "snap.npz")
        save_fleet_snapshot(path, kernel, {"consumed": 2, "done": 0,
                                           "exhausted": True, "slots": 2,
                                           "max_rounds": None,
                                           "release": False,
                                           "snapshot_every": 16})
        with np.load(path, allow_pickle=False) as z:
            data = {k: z[k] for k in z.files}
        meta = json.loads(str(data["meta"]))
        meta["version"] = 99
        data["meta"] = np.array(json.dumps(meta))
        np.savez(path[:-4], **data)
        with pytest.raises(ChainError):
            load_fleet_snapshot(path)


class TestVersionMachinery:
    def test_unknown_version_rejected(self):
        for fmt in SUPPORTED_VERSIONS:
            with pytest.raises(ChainError):
                validate_document({"format": fmt, "version": 99}, fmt)

    def test_non_int_versions_rejected(self):
        for bad in (None, "1", 1.0, True):
            with pytest.raises(ChainError):
                validate_document({"format": "repro.chain", "version": bad},
                                  "repro.chain")

    def test_migration_hook_walks_old_versions(self):
        register_migration("repro.chain", 0)(
            lambda doc: {**doc, "version": 1, "migrated": True})
        try:
            doc = validate_document({"format": "repro.chain", "version": 0},
                                    "repro.chain")
            assert doc["migrated"] and doc["version"] == 1
        finally:
            unregister_migration("repro.chain", 0)

    def test_migration_must_advance(self):
        register_migration("repro.chain", 0)(lambda doc: dict(doc))
        try:
            with pytest.raises(ChainError):
                validate_document({"format": "repro.chain", "version": 0},
                                  "repro.chain")
        finally:
            unregister_migration("repro.chain", 0)

    def test_result_round_trip(self):
        res = Simulator(square_ring(5), engine="kernel").run()
        doc = result_from_json(result_to_json(res))
        assert doc.gathered == res.gathered
        assert doc.rounds == res.rounds
        assert doc.final_positions == res.final_positions
        assert doc.params.k_max == res.params.k_max

    def test_result_unknown_version_rejected(self):
        res = Simulator(square_ring(5), engine="kernel").run()
        doc = json.loads(result_to_json(res))
        doc["version"] = 99
        with pytest.raises(ChainError):
            result_from_json(json.dumps(doc))


class TestFaultPlan:
    def test_decisions_deterministic(self):
        plan = FaultPlan(seed=7, crash=0.1, perturb=0.2)
        again = FaultPlan(seed=7, crash=0.1, perturb=0.2)
        fates = [plan.decide(i) for i in range(200)]
        assert fates == [again.decide(i) for i in range(200)]
        assert "crash" in fates and "perturb" in fates and None in fates

    def test_mutate_deterministic_and_valid(self):
        plan = FaultPlan(seed=1, perturb=1.0, mutations=6)
        pts = square_ring(6)
        mutated = plan.mutate(3, pts)
        assert mutated == plan.mutate(3, pts)
        assert mutated != list(pts)
        from repro.core.chain import ClosedChain
        ClosedChain(mutated)   # still a valid closed chain

    def test_doc_round_trip(self):
        plan = FaultPlan(seed=7, crash=0.02, perturb=0.1, mutations=3)
        assert FaultPlan.from_doc(plan.to_doc()) == plan

    def test_parse(self):
        plan = FaultPlan.parse("seed=7, crash=0.02, perturb=0.1,mutations=3")
        assert plan == FaultPlan(seed=7, crash=0.02, perturb=0.1, mutations=3)
        assert FaultPlan.parse("") == FaultPlan()
        with pytest.raises(ValueError):
            FaultPlan.parse("bogus=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("seed")

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(crash=0.7, perturb=0.7)
        with pytest.raises(ValueError):
            FaultPlan(crash=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(mutations=0)


class TestReaderEdgeCases:
    def test_two_torn_trailing_lines_rejected(self, tmp_path):
        # per-record flushing can tear at most ONE line; two broken
        # trailing lines mean something other than a crash mangled the
        # log, and the complete-but-corrupt one must be rejected
        writer = WalWriter(str(tmp_path))
        writer.append("stream_start", slots=4)
        writer.close()
        with open(tmp_path / "wal.ndjson", "ab") as fh:
            fh.write(b'{"lsn": 1, "type": "yi\n')   # complete but corrupt
            fh.write(b'{"lsn": 2, "type": "yi')     # torn tail
        with pytest.raises(WalError):
            WalReader(str(tmp_path)).records()

    def test_missing_newest_snapshot_falls_back(self, tmp_path):
        # snapshot GC keeps KEEP_SNAPSHOTS files, but last_snapshot
        # must skip a record whose file vanished (e.g. deleted by hand)
        # and fall back to the next-newest that is still on disk
        kernel = _stepped_kernel()
        writer = WalWriter(str(tmp_path))
        writer.append("stream_start", slots=4)
        first = writer.write_snapshot(kernel, _stream_state())
        second = writer.write_snapshot(kernel, _stream_state())
        writer.close()
        (tmp_path / second).unlink()
        reader = WalReader(str(tmp_path))
        rec = reader.last_snapshot()
        assert rec is not None and rec["file"] == first
        (tmp_path / first).unlink()
        assert WalReader(str(tmp_path)).last_snapshot() is None


def _stream_state(**over):
    state = {"consumed": 0, "done": 0, "exhausted": False, "slots": 4,
             "max_rounds": None, "release": True, "snapshot_every": 4,
             "on_error": "raise"}
    state.update(over)
    return state


class TestWalAudit:
    def _logged_stream(self, tmp_path, count=20, snapshot_every=4):
        from repro.io.wal import audit_wal  # noqa: F401
        rng = random.Random(9)
        chains = [random_chain(rng.choice([8, 12]), rng)
                  for _ in range(count)]
        fleet = FleetKernel([], check_invariants=False)
        list(fleet.run_stream(chains, slots=5, release=True,
                              wal=WalWriter(str(tmp_path)),
                              snapshot_every=snapshot_every))
        return chains

    def _audited_tail(self, tmp_path):
        import os
        recs = WalReader(str(tmp_path)).records()
        snap = next(r for r in recs if r["type"] == "snapshot"
                    and os.path.exists(str(tmp_path / r["file"])))
        return recs, snap

    def _rewrite(self, tmp_path, recs):
        with open(tmp_path / "wal.ndjson", "w") as fh:
            for rec in recs:
                fh.write(json.dumps(rec, separators=(",", ":")) + "\n")

    def test_clean_log_passes(self, tmp_path):
        from repro.io.wal import audit_wal
        chains = self._logged_stream(tmp_path)
        report = audit_wal(str(tmp_path), chains)
        assert report.ok and report.complete and report.checked > 0

    def test_tampered_round_pinpoints_lsn(self, tmp_path):
        from repro.io.wal import audit_wal
        chains = self._logged_stream(tmp_path)
        recs, snap = self._audited_tail(tmp_path)
        victim = next(r for r in recs if r["type"] == "round"
                      and r["lsn"] > snap["lsn"])
        victim["mv"], victim["st"] = victim["st"], victim["mv"]
        self._rewrite(tmp_path, recs)
        report = audit_wal(str(tmp_path), chains)
        assert not report.ok
        assert report.divergent_lsn == victim["lsn"]
        assert "round" in report.reason

    def test_truncated_log_audits_prefix(self, tmp_path):
        from repro.io.wal import audit_wal
        chains = self._logged_stream(tmp_path)
        recs, snap = self._audited_tail(tmp_path)
        self._rewrite(tmp_path, recs[:-4])       # crash-style truncation
        report = audit_wal(str(tmp_path), chains)
        assert report.ok and not report.complete

    def test_deleted_record_detected(self, tmp_path):
        from repro.io.wal import audit_wal
        chains = self._logged_stream(tmp_path)
        recs, snap = self._audited_tail(tmp_path)
        # excise one audited record mid-trail and renumber so the LSN
        # chain itself stays plausible — only re-execution can tell
        victim = next(r for r in recs if r["type"] == "yield"
                      and r["lsn"] > snap["lsn"])
        pruned = [r for r in recs if r is not victim]
        for lsn, rec in enumerate(pruned):
            rec["lsn"] = lsn
        self._rewrite(tmp_path, pruned)
        report = audit_wal(str(tmp_path), chains)
        assert not report.ok

    def test_short_stream_rejected(self, tmp_path):
        from repro.io.wal import audit_wal
        chains = self._logged_stream(tmp_path)
        # force the audit onto a snapshot taken mid-stream (cursor > 0):
        # the baseline snapshot would accept any stream prefix
        recs, snap = self._audited_tail(tmp_path)
        (tmp_path / snap["file"]).unlink()
        with pytest.raises(WalError):
            audit_wal(str(tmp_path), chains[:2])
        # and with the full stream the late-snapshot audit still passes
        report = audit_wal(str(tmp_path), chains)
        assert report.ok

    def test_audit_leaves_log_untouched(self, tmp_path):
        from repro.io.wal import audit_wal
        chains = self._logged_stream(tmp_path)
        before = (tmp_path / "wal.ndjson").read_bytes()
        snaps_before = sorted(p.name for p in tmp_path.iterdir())
        audit_wal(str(tmp_path), chains)
        assert (tmp_path / "wal.ndjson").read_bytes() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == snaps_before

    def test_resumed_log_audits_after_resume(self, tmp_path):
        from repro.io.wal import audit_wal
        rng = random.Random(5)
        chains = [random_chain(rng.choice([8, 12]), rng)
                  for _ in range(16)]
        fleet = FleetKernel([], check_invariants=False)
        gen = fleet.run_stream(chains, slots=4, release=True,
                               wal=WalWriter(str(tmp_path)),
                               snapshot_every=3)
        for _ in range(5):                       # partial run, then "crash"
            next(gen)
        gen.close()
        list(FleetKernel.resume(str(tmp_path), chains))
        recs = WalReader(str(tmp_path)).records()
        assert any(r["type"] == "resume" for r in recs)
        report = audit_wal(str(tmp_path), chains)
        assert report.ok and report.complete
