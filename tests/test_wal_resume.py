"""Crash/resume determinism for the WAL streaming tier (DESIGN.md §2.12).

The contract under test: SIGKILL a WAL-enabled stream at any point,
resume it from the latest snapshot plus log replay, and the combined
output — every result, every per-round report — is bit-identical to
the uninterrupted run.  Crashes here abandon the generator mid-flight
(the in-process equivalent of process death; the subprocess SIGKILL
variant lives in ``scripts/crash_harness.py`` and CI).
"""

import json
import random

import pytest

from repro.cli import main
from repro.core.batch import BatchSimulator, gather_stream
from repro.core.engine_fleet import FleetKernel
from repro.core.faults import FaultPlan
from repro.chains import random_chain
from repro.errors import WalError
from repro.io import WalReader, WalWriter


def _stream_pts(n=60, seed=3):
    rng = random.Random(seed)
    return [random_chain(rng.choice([8, 12, 16, 20]), rng)
            for _ in range(n)]


def _clean_run(pts, slots=8, **kw):
    kernel = FleetKernel([], keep_reports=True)
    return dict(kernel.run_stream(iter(pts), slots=slots, **kw))


def _collect_dedup(results, gen):
    """Drain ``gen`` into ``results``, asserting duplicates re-deliver
    bit-identically (the crash-window contract)."""
    for ext, res in gen:
        if ext in results:
            prev = results[ext]
            assert prev.rounds == res.rounds
            assert prev.final_positions == res.final_positions
        results[ext] = res
    return results


def _assert_same(clean, recovered):
    assert sorted(clean) == sorted(recovered)
    for ext, c in clean.items():
        r = recovered[ext]
        assert r.gathered == c.gathered, f"chain {ext}"
        assert r.stalled == c.stalled, f"chain {ext}"
        assert r.rounds == c.rounds, f"chain {ext}"
        assert r.final_n == c.final_n, f"chain {ext}"
        assert r.final_positions == c.final_positions, f"chain {ext}"
        # RoundReport is a slots dataclass: == is full field equality,
        # so this is the lockstep per-round comparison
        assert r.reports == c.reports, f"chain {ext}"


class TestCrashResume:
    def test_wal_run_matches_no_wal(self, tmp_path):
        pts = _stream_pts(40)
        clean = _clean_run(pts)
        kernel = FleetKernel([], keep_reports=True)
        walled = dict(kernel.run_stream(
            iter(pts), slots=8, wal=WalWriter(str(tmp_path)),
            snapshot_every=16))
        _assert_same(clean, walled)
        types = {r["type"] for r in WalReader(str(tmp_path)).records()}
        assert types == {"stream_start", "snapshot", "admit", "round",
                         "retire", "yield", "stream_end"}

    @pytest.mark.parametrize("cut", [1, 7, 25, 59])
    def test_crash_then_resume_bit_identical(self, cut, tmp_path):
        pts = _stream_pts(60)
        clean = _clean_run(pts)

        kernel = FleetKernel([], keep_reports=True)
        gen = kernel.run_stream(iter(pts), slots=8,
                                wal=WalWriter(str(tmp_path)),
                                snapshot_every=5)
        results = {}
        for _ in range(cut):
            ext, res = next(gen)
            results[ext] = res
        gen.close()                                   # "SIGKILL"

        _, resumed = FleetKernel.restore_stream(str(tmp_path), iter(pts))
        _collect_dedup(results, resumed)
        _assert_same(clean, results)

    def test_double_crash(self, tmp_path):
        pts = _stream_pts(80, seed=9)
        clean = _clean_run(pts)
        results = {}

        kernel = FleetKernel([], keep_reports=True)
        gen = kernel.run_stream(iter(pts), slots=8,
                                wal=WalWriter(str(tmp_path)),
                                snapshot_every=7)
        for _ in range(13):
            ext, res = next(gen)
            results[ext] = res
        gen.close()

        _, gen = FleetKernel.restore_stream(str(tmp_path), iter(pts))
        for _ in range(9):
            ext, res = next(gen)
            results[ext] = res
        gen.close()

        _, gen = FleetKernel.restore_stream(str(tmp_path), iter(pts))
        _collect_dedup(results, gen)
        _assert_same(clean, results)

    def test_faulty_stream_resumes_identically(self, tmp_path):
        pts = _stream_pts(60, seed=5)
        faults = FaultPlan(seed=7, crash=0.1, perturb=0.2, mutations=3)
        clean = _clean_run(pts, faults=faults)
        assert len(clean) < 60          # some entries crashed out

        kernel = FleetKernel([], keep_reports=True)
        gen = kernel.run_stream(iter(pts), slots=8,
                                wal=WalWriter(str(tmp_path)),
                                snapshot_every=6, faults=faults)
        results = {}
        for _ in range(11):
            ext, res = next(gen)
            results[ext] = res
        gen.close()

        # the fault plan rides in the WAL's stream_start record —
        # restore_stream reconstructs it without being told
        _, gen = FleetKernel.restore_stream(str(tmp_path), iter(pts))
        _collect_dedup(results, gen)
        _assert_same(clean, results)

    def test_resume_reconsumes_iterator_from_cursor(self, tmp_path):
        pts = _stream_pts(30, seed=2)
        kernel = FleetKernel([], keep_reports=True)
        gen = kernel.run_stream(iter(pts), slots=4,
                                wal=WalWriter(str(tmp_path)),
                                snapshot_every=3)
        for _ in range(5):
            next(gen)
        gen.close()

        pulls = 0

        def counting():
            nonlocal pulls
            for p in pts:
                pulls += 1
                yield p

        _, gen = FleetKernel.restore_stream(str(tmp_path), counting())
        list(gen)
        assert pulls == 30              # fast-forward + live tail, no more


class TestResumeErrors:
    def test_resume_empty_log(self, tmp_path):
        # crash before the generator ever ran: nothing to resume
        WalWriter(str(tmp_path)).close()
        with pytest.raises(WalError):
            FleetKernel.restore_stream(str(tmp_path), iter([]))

    def test_resume_without_snapshot(self, tmp_path):
        writer = WalWriter(str(tmp_path))
        writer.append("stream_start", slots=4, snapshot_every=16,
                      max_rounds=None, release=False, params=None,
                      faults=None)
        writer.close()
        with pytest.raises(WalError):
            FleetKernel.restore_stream(str(tmp_path), iter([]))

    def test_resume_with_short_stream(self, tmp_path):
        pts = _stream_pts(20, seed=4)
        kernel = FleetKernel([], keep_reports=True)
        gen = kernel.run_stream(iter(pts), slots=4,
                                wal=WalWriter(str(tmp_path)),
                                snapshot_every=2)
        for _ in range(6):
            next(gen)
        gen.close()
        with pytest.raises(WalError):
            FleetKernel.restore_stream(str(tmp_path), iter(pts[:2]))

    def test_snapshot_every_validated(self, tmp_path):
        kernel = FleetKernel([], keep_reports=False)
        with pytest.raises(ValueError):
            next(kernel.run_stream(iter([]), slots=4, snapshot_every=0))


class TestBatchWiring:
    def test_gather_stream_with_wal(self, tmp_path):
        pts = _stream_pts(25, seed=8)
        clean = list(gather_stream(iter(pts), slots=6))
        walled = list(gather_stream(iter(pts), slots=6,
                                    wal_dir=str(tmp_path)))
        assert [(i, r.rounds, r.final_positions) for i, r in clean] == \
               [(i, r.rounds, r.final_positions) for i, r in walled]

    def test_batch_resume_roundtrip(self, tmp_path):
        pts = _stream_pts(30, seed=6)
        wal_dir = str(tmp_path / "wal")
        sim = BatchSimulator([], engine="kernel", backend="fleet")
        gen = sim.run_stream(iter(pts), slots=6, wal_dir=wal_dir,
                             snapshot_every=4)
        results = {}
        for _ in range(7):
            ext, res = next(gen)
            results[ext] = res
        gen.close()

        sim2 = BatchSimulator([], engine="kernel", backend="fleet")
        for ext, res in sim2.run_stream(iter(pts), slots=6, wal_dir=wal_dir,
                                        resume=True):
            results.setdefault(ext, res)
        clean = dict(BatchSimulator([], engine="kernel", backend="fleet")
                     .run_stream(iter(pts), slots=6))
        assert sorted(results) == sorted(clean)
        for ext in clean:
            assert results[ext].rounds == clean[ext].rounds
            assert results[ext].final_positions == clean[ext].final_positions
        stats = sim2.last_stream_stats
        assert "fault_crashed" in stats and "fault_perturbed" in stats

    def test_wal_rejects_multiprocess(self, tmp_path):
        sim = BatchSimulator([], engine="kernel", backend="fleet", workers=2)
        with pytest.raises(ValueError):
            next(sim.run_stream(iter([]), slots=4, wal_dir=str(tmp_path)))

    def test_resume_requires_wal_dir(self):
        sim = BatchSimulator([], engine="kernel", backend="fleet")
        with pytest.raises(ValueError):
            next(sim.run_stream(iter([]), slots=4, resume=True))

    def test_cli_wal_matches_clean_and_resumes(self, tmp_path, capsys):
        pts = _stream_pts(30, seed=13)
        jl = tmp_path / "chains.jsonl"
        jl.write_text("".join(json.dumps([list(p) for p in c]) + "\n"
                              for c in pts))
        clean = tmp_path / "clean.ndjson"
        assert main(["batch", "--stream", str(jl), "--slots", "6",
                     "--out", str(clean)]) == 0

        # crash a WAL-enabled run mid-stream through the kernel API,
        # leaving a partially-written out file with a torn last line
        wal_dir = tmp_path / "wal"
        kernel = FleetKernel([], keep_reports=False)
        gen = kernel.run_stream(
            (list(p) for p in pts), slots=6,
            wal=WalWriter(str(wal_dir)), snapshot_every=4)
        out = tmp_path / "out.ndjson"
        clean_lines = clean.read_text().splitlines(keepends=True)
        delivered = [ext for _, (ext, _res) in zip(range(7), gen)]
        gen.close()
        by_idx = {json.loads(l)["chain"]: l for l in clean_lines}
        partial = "".join(by_idx[e] for e in delivered[:-1])
        out.write_text(partial + by_idx[delivered[-1]][:-10])  # torn

        assert main(["batch", "--stream", str(jl), "--slots", "6",
                     "--wal", str(wal_dir), "--resume",
                     "--out", str(out)]) == 0
        assert out.read_bytes() == clean.read_bytes()
        capsys.readouterr()

    def test_cli_faults_flag(self, tmp_path, capsys):
        pts = _stream_pts(20, seed=14)
        jl = tmp_path / "chains.jsonl"
        jl.write_text("".join(json.dumps([list(p) for p in c]) + "\n"
                              for c in pts))
        assert main(["batch", "--stream", str(jl), "--slots", "4",
                     "--faults", "seed=3,crash=0.3", "--json"]) == 0
        lines = [json.loads(l) for l in
                 capsys.readouterr().out.strip().splitlines()
                 if l.startswith("{")]
        assert 0 < len(lines) < 20          # some entries crashed out

    def test_cli_flag_validation(self, tmp_path):
        jl = tmp_path / "c.jsonl"
        jl.write_text("")
        with pytest.raises(SystemExit):
            main(["batch", "--stream", str(jl), "--resume"])
        # --wal with --workers is the sharded supervision tier now;
        # only top-level --resume stays single-process
        with pytest.raises(SystemExit):
            main(["batch", "--stream", str(jl), "--wal",
                  str(tmp_path / "w"), "--workers", "2", "--resume"])
        with pytest.raises(SystemExit):
            main(["batch", "--stream", str(jl), "--skip-bad-lines"])
        with pytest.raises(SystemExit):
            main(["batch", "--stream", str(jl), "--faults", "bogus=1"])
        with pytest.raises(SystemExit):
            main(["batch", "--wal", str(tmp_path / "w")])  # needs --stream

    def test_pool_faults_match_inprocess(self):
        pts = _stream_pts(40, seed=12)
        faults = FaultPlan(seed=3, crash=0.15, perturb=0.15)
        solo = dict(BatchSimulator([], engine="kernel", backend="fleet")
                    .run_stream(iter(pts), slots=8, faults=faults))
        pool = dict(BatchSimulator([], engine="kernel", backend="fleet",
                                   workers=2)
                    .run_stream(iter(pts), slots=8, faults=faults))
        assert sorted(solo) == sorted(pool)
        for ext in solo:
            assert solo[ext].rounds == pool[ext].rounds
            assert solo[ext].final_positions == pool[ext].final_positions
